"""Tests for the campaign resilience layer (repro.resilience).

Covers the four pillars in-process (subprocess crash/interrupt tests
live in ``test_resilience_chaos.py``):

* integrity — sealed records, tolerant scanning, atomic writes, ENOSPC
  backoff, and the store-level torn-line / bit-flip tolerance that
  rewinds the resume frontier;
* liveness — heartbeat board, watchdog escalation, SignalGuard;
* degradation — poison-unit quarantine and the complete-with-holes
  status / exit code;
* proof — deterministic chaos decisions and verify/repair restoring a
  damaged campaign directory without losing verified-good records.
"""

from __future__ import annotations

import errno
import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.campaign import CampaignStore, EngineConfig, UnitResult, WorkUnit, execute
from repro.campaign.engine import register_runner, shard_of
from repro.campaign.goldens import GoldenCache
from repro.common.exceptions import ConfigError
from repro.resilience import chaos, integrity
from repro.resilience.verify import (
    normalize_record,
    repair_campaign,
    verify_campaign,
)
from repro.resilience.watchdog import (
    CampaignInterrupted,
    Heartbeats,
    SignalGuard,
    Watchdog,
)


@pytest.fixture(autouse=True)
def _chaos_off():
    """Never leak an active chaos state into other tests."""
    chaos.deactivate()
    yield
    chaos.deactivate()


@register_runner("test-resilient-echo")
def _echo(payload: dict) -> dict:
    return {"items": 1, "value": payload["x"] * 2}


@register_runner("test-always-crash")
def _always_crash(payload: dict) -> dict:
    raise ValueError(f"permanent failure in unit {payload['x']}")


@register_runner("test-signal-probe")
def _signal_probe(payload: dict) -> dict:
    """Report this process's SIGTERM/SIGINT dispositions (the pool
    initializer must have reset the parent's inherited handlers)."""
    return {"items": 1,
            "sigterm_default":
                signal.getsignal(signal.SIGTERM) == signal.SIG_DFL,
            "sigint_ignored":
                signal.getsignal(signal.SIGINT) == signal.SIG_IGN}


def _ignore_sigterm_and_sleep() -> None:
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(60.0)


def _units(kind: str, n: int) -> list[WorkUnit]:
    return [WorkUnit(unit_id=f"{kind}/{i:03d}", kind=kind,
                     payload={"x": i}, shard=shard_of(f"{kind}/{i}"))
            for i in range(n)]


def _populated_store(tmp_path, n: int = 4) -> CampaignStore:
    store = CampaignStore(tmp_path / "campaign")
    store.write_manifest("test-resilient-echo", {"n": n}, total_units=n)
    execute(_units("test-resilient-echo", n), EngineConfig(processes=1),
            store=store)
    return store


# ---------------------------------------------------------------------
# integrity primitives
# ---------------------------------------------------------------------

class TestSealedRecords:
    def test_seal_unseal_roundtrip(self):
        body = {"unit_id": "u/1", "ok": True, "value": {"items": 3}}
        sealed = integrity.seal(body)
        assert integrity.CHECKSUM_FIELD in sealed
        out, status = integrity.unseal(sealed)
        assert status == "ok"
        assert out == body

    def test_any_flipped_bit_is_detected(self):
        sealed = integrity.seal({"a": 1, "b": "xyz"})
        line = json.dumps(sealed)
        for pos in range(len(line)):
            flipped = line[:pos] + chr(ord(line[pos]) ^ 0x4) + line[pos + 1:]
            try:
                parsed = json.loads(flipped)
            except ValueError:
                continue  # unparseable: caught by the scanner instead
            if not isinstance(parsed, dict) or parsed == sealed:
                continue
            _, status = integrity.unseal(parsed)
            if integrity.CHECKSUM_FIELD not in parsed:
                # known limit: a flip inside the checksum *key* demotes the
                # record to legacy (accepted for pre-resilience stores)
                assert status == "legacy"
            else:
                assert status == "corrupt", f"flip at {pos} went undetected"

    def test_legacy_records_accepted(self):
        body, status = integrity.unseal({"unit_id": "old", "ok": True})
        assert status == "legacy"
        assert body == {"unit_id": "old", "ok": True}

    def test_checksum_independent_of_key_order(self):
        a = integrity.record_checksum({"x": 1, "y": 2})
        b = integrity.record_checksum({"y": 2, "x": 1})
        assert a == b


class TestScanJsonl:
    def _write(self, tmp_path, text: str):
        p = tmp_path / "store.jsonl"
        p.write_text(text)
        return p

    def test_clean_file(self, tmp_path):
        lines = [json.dumps(integrity.seal({"unit_id": f"u/{i}"}))
                 for i in range(3)]
        report = integrity.scan_jsonl(
            self._write(tmp_path, "".join(ln + "\n" for ln in lines)))
        assert report.ok
        assert len(report.records) == 3
        assert report.good_lines == lines

    def test_torn_final_line(self, tmp_path):
        good = json.dumps(integrity.seal({"unit_id": "u/0"}))
        torn = json.dumps(integrity.seal({"unit_id": "u/1"}))[:17]
        report = integrity.scan_jsonl(
            self._write(tmp_path, good + "\n" + torn))
        assert [i.kind for i in report.issues] == ["torn"]
        assert [r["unit_id"] for r in report.records] == ["u/0"]

    def test_garbage_mid_file(self, tmp_path):
        good = json.dumps(integrity.seal({"unit_id": "u/0"}))
        report = integrity.scan_jsonl(
            self._write(tmp_path, good + "\n{{{not json\n" + good + "\n"))
        assert [i.kind for i in report.issues] == ["garbage"]
        assert len(report.records) == 2

    def test_checksum_mismatch_is_corrupt(self, tmp_path):
        bad = dict(integrity.seal({"unit_id": "u/0", "ok": True}))
        bad["ok"] = False  # silent in-place mutation
        report = integrity.scan_jsonl(
            self._write(tmp_path, json.dumps(bad) + "\n"))
        assert [i.kind for i in report.issues] == ["corrupt"]
        assert not report.records

    def test_missing_and_empty_files(self, tmp_path):
        assert integrity.scan_jsonl(tmp_path / "absent.jsonl").ok
        assert integrity.scan_jsonl(self._write(tmp_path, "")).ok

    def test_invalid_utf8_is_corrupt_not_a_crash(self, tmp_path):
        # a high-bit flip leaves bytes that are not valid UTF-8; the
        # scanner must classify, never raise UnicodeDecodeError
        good = json.dumps(integrity.seal({"unit_id": "u/0"}))
        bad = json.dumps(integrity.seal({"unit_id": "u/1"})).encode()
        pos = bad.index(b"u/1")  # inside a string: still parses as JSON
        bad = bad[:pos] + bytes([bad[pos] ^ 0x80]) + bad[pos + 1:]
        with pytest.raises(UnicodeDecodeError):
            bad.decode()
        p = tmp_path / "store.jsonl"
        p.write_bytes(good.encode() + b"\n" + bad + b"\n")
        report = integrity.scan_jsonl(p)
        assert [r["unit_id"] for r in report.records] == ["u/0"]
        assert [i.kind for i in report.issues] == ["corrupt"]


class TestAtomicWrites:
    def test_replace_is_all_or_nothing(self, tmp_path):
        p = tmp_path / "manifest.json"
        integrity.atomic_write_text(p, "one")
        integrity.atomic_write_text(p, "two", durable=False)
        assert p.read_text() == "two"
        assert not list(tmp_path.glob(".*tmp*"))  # no tmp droppings

    def test_enospc_backoff_retries_then_succeeds(self, tmp_path):
        chaos.configure({"enospc": 2})
        p = tmp_path / "results.jsonl"
        integrity.append_text(p, "hello\n")
        assert p.read_text() == "hello\n"
        assert chaos.ACTIVE.fired["enospc"] == 2
        assert chaos.ACTIVE.enospc_budget == 0

    def test_non_enospc_oserror_is_not_swallowed(self, tmp_path, monkeypatch):
        def boom():
            raise OSError(errno.EACCES, "nope")

        with pytest.raises(OSError):
            integrity._with_enospc_backoff(boom, what="x")


# ---------------------------------------------------------------------
# store-level tolerance (satellite: torn final line on --resume)
# ---------------------------------------------------------------------

class TestStoreTolerance:
    def test_torn_final_line_is_dropped_and_rerun(self, tmp_path):
        store = _populated_store(tmp_path, n=4)
        assert len(store.completed_ids()) == 4
        text = store.results_path.read_text()
        lines = text.splitlines()
        # crash mid-append: final line half-written, no newline
        store.results_path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])

        completed = store.completed_ids()
        assert len(completed) == 3
        assert store.last_scan.issues[0].kind == "torn"

        # resume executes exactly the dropped unit
        results = execute(_units("test-resilient-echo", 4),
                          EngineConfig(processes=1), store=store)
        assert len(results) == 1
        assert len(store.completed_ids()) == 4

    def test_bitflipped_record_is_dropped(self, tmp_path):
        store = _populated_store(tmp_path, n=3)
        lines = store.results_path.read_text().splitlines()
        flipped = lines[1].replace('"ok": true', '"ok": frue')
        assert flipped != lines[1]
        store.results_path.write_text(
            "\n".join([lines[0], flipped, lines[2]]) + "\n")
        assert len(store.completed_ids()) == 2

    def test_records_are_sealed_on_disk(self, tmp_path):
        store = _populated_store(tmp_path, n=1)
        record = json.loads(store.results_path.read_text().splitlines()[0])
        assert record[integrity.CHECKSUM_FIELD] == \
            integrity.record_checksum(record)

    def test_manifest_backup_written(self, tmp_path):
        store = _populated_store(tmp_path, n=1)
        assert store.manifest_backup_path.exists()
        assert json.loads(store.manifest_backup_path.read_text()) == \
            store.load_manifest()

    def test_corrupt_manifest_raises_with_repair_hint(self, tmp_path):
        store = _populated_store(tmp_path, n=1)
        store.manifest_path.write_text('{"kind": "test-re')  # truncated
        with pytest.raises(ConfigError, match="repair"):
            store.load_manifest()


# ---------------------------------------------------------------------
# degradation: quarantine + complete-with-holes
# ---------------------------------------------------------------------

class TestQuarantine:
    def _run_with_crashers(self, tmp_path, n_ok=3, n_crash=1):
        units = _units("test-resilient-echo", n_ok) + \
            _units("test-always-crash", n_crash)
        store = CampaignStore(tmp_path / "campaign")
        store.write_manifest("mixed", {}, total_units=len(units))
        execute(units, EngineConfig(processes=1, retries=1, backoff=0.0),
                store=store)
        return store

    def test_exhausted_retries_land_in_quarantine(self, tmp_path):
        store = self._run_with_crashers(tmp_path)
        q = store.load_quarantine()
        assert set(q) == {"test-always-crash/000"}
        assert "retries exhausted" in q["test-always-crash/000"]["reason"]
        # not mixed into results
        assert "test-always-crash/000" not in store.load_results()

    def test_status_reports_holes(self, tmp_path):
        store = self._run_with_crashers(tmp_path)
        status = store.status()
        assert status["quarantined_units"] == 1
        assert status["completed_units"] == 3
        assert not status["complete"]
        assert status["complete_with_holes"]

    def test_resume_skips_quarantined_units(self, tmp_path):
        store = self._run_with_crashers(tmp_path)
        units = _units("test-resilient-echo", 3) + \
            _units("test-always-crash", 1)
        results = execute(units, EngineConfig(processes=1, retries=0),
                          store=store)
        assert not results  # nothing pending: 3 done + 1 quarantined

    def test_clear_quarantine_requeues(self, tmp_path):
        store = self._run_with_crashers(tmp_path)
        assert store.clear_quarantine() == 1
        assert not store.quarantined_ids()
        units = _units("test-always-crash", 1)
        results = execute(units, EngineConfig(processes=1, retries=0,
                                              backoff=0.0), store=store)
        assert set(results) == {"test-always-crash/000"}

    def test_quarantine_disabled_records_plain_failure(self, tmp_path):
        store = CampaignStore(tmp_path / "campaign")
        store.write_manifest("mixed", {}, total_units=1)
        execute(_units("test-always-crash", 1),
                EngineConfig(processes=1, retries=0, backoff=0.0,
                             quarantine=False), store=store)
        assert not store.quarantined_ids()
        assert not store.load_results()["test-always-crash/000"].ok

    def test_hard_fail_limit_zero_quarantines_soft_failures(self, tmp_path):
        # with hard_fail_limit=0 every failure is immediately poison —
        # including soft ones with no hard_fails entry; regression for a
        # KeyError while formatting the quarantine reason
        store = CampaignStore(tmp_path / "campaign")
        store.write_manifest("mixed", {}, total_units=1)
        execute(_units("test-always-crash", 1),
                EngineConfig(processes=1, retries=2, backoff=0.0,
                             hard_fail_limit=0), store=store)
        q = store.load_quarantine()
        assert set(q) == {"test-always-crash/000"}
        assert "poison unit: 0 hard failures" in \
            q["test-always-crash/000"]["reason"]

    def test_status_cli_exit_code_3_on_holes(self, tmp_path, capsys):
        from repro.campaign.__main__ import EXIT_HOLES, main

        store = self._run_with_crashers(tmp_path)
        rc = main(["status", "--dir", str(store.directory)])
        assert rc == EXIT_HOLES
        out = capsys.readouterr().out
        assert '"quarantined_units": 1' in out
        assert '"complete_with_holes": true' in out


# ---------------------------------------------------------------------
# liveness: heartbeats, watchdog, signal guard
# ---------------------------------------------------------------------

class TestLiveness:
    def test_heartbeat_board(self):
        hb = Heartbeats(2)
        slot = hb.register()
        assert slot == 0
        hb.start(slot)
        assert not hb.stalled(older_than=60.0)
        hb._beats[slot] = time.time() - 120.0
        stalled = hb.stalled(older_than=60.0)
        assert stalled and stalled[0][0] == slot
        hb.clear(slot)
        assert not hb.stalled(older_than=60.0)

    def test_board_overflow_returns_minus_one(self):
        hb = Heartbeats(1)
        assert hb.register() == 0
        assert hb.register() == -1
        hb.start(-1)  # must be harmless
        hb.clear(-1)

    def test_watchdog_escalates_on_stalled_pid(self):
        proc = multiprocessing.get_context("fork").Process(
            target=time.sleep, args=(60.0,), daemon=True)
        proc.start()
        hb = Heartbeats(1)
        # stamp the child's pid into the board directly (the real board is
        # filled by the pool initializer running inside each worker)
        hb._pids[0] = proc.pid
        hb._beats[0] = time.time() - 100.0
        hb._next.value = 1
        escalations = []
        dog = Watchdog(hb, timeout=0.1, grace=0.05, kill_grace=0.2,
                       poll=0.05, on_escalate=lambda pid, sig:
                       escalations.append((pid, sig)))
        dog.start()
        try:
            proc.join(timeout=10.0)
            assert proc.exitcode is not None, "watchdog never fired"
        finally:
            dog.stop()
            if proc.is_alive():
                proc.kill()
                proc.join()
        assert dog.sigterms >= 1
        assert escalations and escalations[0] == (proc.pid, "SIGTERM")

    def test_watchdog_sigkills_term_ignoring_worker_and_forgets_pid(self):
        # a worker stuck ignoring SIGTERM must be SIGKILLed, and the
        # escalation entry must be dropped afterwards so a pool
        # replacement reusing the pid can be escalated again
        proc = multiprocessing.get_context("fork").Process(
            target=_ignore_sigterm_and_sleep, daemon=True)
        proc.start()
        time.sleep(0.2)  # let the child install its SIG_IGN handler
        hb = Heartbeats(1)
        hb._pids[0] = proc.pid
        hb._beats[0] = time.time() - 100.0
        hb._next.value = 1
        dog = Watchdog(hb, timeout=0.1, grace=0.05, kill_grace=0.2,
                       poll=0.05)
        dog.start()
        try:
            proc.join(timeout=10.0)
            assert proc.exitcode is not None, "watchdog never SIGKILLed"
        finally:
            dog.stop()
            if proc.is_alive():
                proc.kill()
                proc.join()
        assert dog.sigterms >= 1 and dog.sigkills >= 1
        assert not dog._termed  # pid-reuse eligibility restored

    def test_pool_workers_reset_inherited_signal_handlers(self):
        # the parent's SignalGuard handlers ride through fork(); the
        # pool initializer must restore SIGTERM=default / SIGINT=ignore
        # or Pool.terminate() and the watchdog cannot kill a worker
        results = execute(_units("test-signal-probe", 4),
                          EngineConfig(processes=2, watchdog=False,
                                       handle_signals=True))
        assert len(results) == 4
        for r in results.values():
            assert r.ok
            assert r.value["sigterm_default"], \
                "worker inherited the parent's SIGTERM handler"
            assert r.value["sigint_ignored"]

    def test_signal_guard_captures_first_signal(self):
        with SignalGuard(signums=(signal.SIGUSR1,)) as guard:
            assert guard.active
            os.kill(os.getpid(), signal.SIGUSR1)
            deadline = time.time() + 2.0
            while not guard.requested and time.time() < deadline:
                time.sleep(0.01)
            assert guard.requested
            assert guard.signum == signal.SIGUSR1
        assert not guard.active  # handlers restored

    def test_engine_raises_interrupted_after_checkpoint(self, tmp_path):
        store = CampaignStore(tmp_path / "campaign")
        store.write_manifest("test-resilient-echo", {}, total_units=3)

        units = _units("test-resilient-echo", 3)
        fired = {"done": False}

        def interrupt_once(result):
            if not fired["done"]:
                fired["done"] = True
                os.kill(os.getpid(), signal.SIGINT)

        with pytest.raises(CampaignInterrupted) as exc:
            execute(units, EngineConfig(processes=1), store=store,
                    on_result=interrupt_once)
        assert exc.value.exit_code == 130
        assert exc.value.committed >= 1
        assert exc.value.results
        # the store holds the committed prefix and is cleanly resumable
        assert store.completed_ids() == set(exc.value.results)
        resumed = execute(units, EngineConfig(processes=1), store=store)
        assert set(store.completed_ids()) == {u.unit_id for u in units}
        assert set(resumed).isdisjoint(exc.value.results)

    def test_campaign_interrupted_exit_codes(self):
        assert CampaignInterrupted(signal.SIGINT, 1).exit_code == 130
        assert CampaignInterrupted(signal.SIGTERM, 0).exit_code == 143


# ---------------------------------------------------------------------
# chaos determinism
# ---------------------------------------------------------------------

class TestChaos:
    def test_parse_spec(self):
        assert chaos.parse_spec("kill:0.2, torn:0.1,enospc:2") == \
            {"kill": 0.2, "torn": 0.1, "enospc": 2.0}
        with pytest.raises(ConfigError):
            chaos.parse_spec("kill:lots")
        with pytest.raises(ConfigError):
            chaos.configure("meteor:1.0")

    def test_from_env(self):
        assert chaos.from_env({}) is None
        state = chaos.from_env({chaos.ENV: "torn:0.5",
                                chaos.ENV_SEED: "11"})
        assert state.faults == {"torn": 0.5}
        assert state.seed == 11

    def test_decisions_are_deterministic(self):
        line = json.dumps(integrity.seal({"unit_id": "u/7", "ok": True}))
        line += "\n"
        chaos.configure({"torn": 0.5, "bitflip": 0.5}, seed=3)
        first = [chaos.mangle_line(line, "results", f"u/{i}")
                 for i in range(50)]
        chaos.configure({"torn": 0.5, "bitflip": 0.5}, seed=3)
        second = [chaos.mangle_line(line, "results", f"u/{i}")
                  for i in range(50)]
        assert first == second
        assert any(m != line for m in first)  # something actually fired

    def test_attempt_key_spares_the_retry(self):
        # a unit killed on attempt 0 must not be deterministically killed
        # forever: the decision includes the attempt number
        chaos.configure({"kill": 0.5}, seed=1)
        state = chaos.ACTIVE
        rolls = {(uid, attempt): chaos._roll(state, "kill", uid, attempt)
                 for uid in (f"u/{i}" for i in range(20))
                 for attempt in range(3)}
        killed = [uid for (uid, att), hit in rolls.items()
                  if att == 0 and hit]
        assert killed, "seed produced no kills; test is vacuous"
        assert any(not rolls[(uid, 1)] for uid in killed)

    def test_mangled_lines_are_detected_by_scanner(self, tmp_path):
        chaos.configure({"bitflip": 1.0}, seed=5)
        line = json.dumps(integrity.seal({"unit_id": "u/0", "ok": True}))
        mangled = chaos.mangle_line(line + "\n", "results", "u/0")
        chaos.deactivate()
        p = tmp_path / "r.jsonl"
        p.write_text(mangled)
        report = integrity.scan_jsonl(p)
        assert not report.records
        assert report.issues[0].kind in ("corrupt", "garbage", "torn")

    def test_torn_mangle_loses_the_newline(self):
        chaos.configure({"torn": 1.0}, seed=0)
        out = chaos.mangle_line('{"a": 1}\n', "k")
        assert not out.endswith("\n")
        assert len(out) < len('{"a": 1}\n')

    def test_bitflip_covers_the_high_bit(self, tmp_path):
        # the flip must span all 8 bits: a bit-7 flip produces invalid
        # UTF-8 on disk, which load_results must drop, not crash on
        line = (json.dumps(integrity.seal({"unit_id": "u/0"})) + "\n"
                ).encode()
        mangled = None
        for seed in range(64):
            chaos.configure({"bitflip": 1.0}, seed=seed)
            out = chaos.mangle_bytes(line, "results", "u/0")
            try:
                out.decode("utf-8")
            except UnicodeDecodeError:
                mangled = out
                break
        assert mangled is not None, "no seed in 0..63 flipped bit 7"
        p = tmp_path / "r.jsonl"
        p.write_bytes(mangled)
        chaos.deactivate()
        report = integrity.scan_jsonl(p)
        assert not report.records
        assert report.issues[0].kind in ("corrupt", "garbage")

    def test_hooks_are_noops_when_inactive(self, tmp_path):
        line = '{"a": 1}\n'
        assert chaos.mangle_line(line, "k") is line
        chaos.fs_hook("write", tmp_path / "x")  # no raise
        chaos.worker_hook("u/0", 0)  # no kill in this process


# ---------------------------------------------------------------------
# verify / repair
# ---------------------------------------------------------------------

class TestVerifyRepair:
    def test_clean_directory_verifies_ok(self, tmp_path):
        store = _populated_store(tmp_path)
        report = verify_campaign(store.directory)
        assert report.ok, report.render()
        assert report.records["results.jsonl"] == 4

    def test_not_a_directory(self, tmp_path):
        assert not verify_campaign(tmp_path / "nope").ok

    def test_detects_injected_bitflip(self, tmp_path):
        store = _populated_store(tmp_path)
        lines = store.results_path.read_text().splitlines()
        lines[1] = lines[1].replace('"ok": true', '"ok": frue')
        store.results_path.write_text("\n".join(lines) + "\n")
        report = verify_campaign(store.directory)
        assert not report.ok
        kinds = {f.detail.split()[0] for f in report.findings
                 if f.severity == "error"}
        assert kinds  # the damaged line surfaced as an error finding

    def test_detects_truncated_manifest(self, tmp_path):
        store = _populated_store(tmp_path)
        full = store.manifest_path.read_text()
        store.manifest_path.write_text(full[: len(full) // 2])
        report = verify_campaign(store.directory)
        assert not report.ok
        assert any(f.file == "manifest.json" and f.severity == "error"
                   for f in report.findings)

    def test_detects_fingerprint_tamper(self, tmp_path):
        store = _populated_store(tmp_path)
        manifest = store.load_manifest()
        manifest["config"]["n"] = 999  # edited in place, stale fingerprint
        store.manifest_path.write_text(json.dumps(manifest))
        assert not verify_campaign(store.directory).ok

    def test_repair_restores_resumable_state(self, tmp_path):
        store = _populated_store(tmp_path)
        good_manifest = store.load_manifest()
        # damage 1: truncated manifest
        full = store.manifest_path.read_text()
        store.manifest_path.write_text(full[: len(full) // 2])
        # damage 2: bit-flipped record + torn final line
        lines = store.results_path.read_text().splitlines()
        lines[1] = lines[1].replace('"ok": true', '"ok": frue')
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        store.results_path.write_text("\n".join(lines))

        assert not verify_campaign(store.directory).ok
        report = repair_campaign(store.directory)
        assert report.ok, report.render()
        assert report.repaired

        after = verify_campaign(store.directory)
        assert after.ok, after.render()
        # manifest came back from the .bak shadow
        assert store.load_manifest() == good_manifest
        # verified-good records survived; the two damaged ones rewound
        assert len(store.completed_ids()) == 2
        # forensic copy of what was dropped
        rejected = store.directory / "results.rejected.jsonl"
        assert rejected.exists()
        assert len(rejected.read_text().splitlines()) == 2
        # and the campaign is resumable to completion
        execute(_units("test-resilient-echo", 4), EngineConfig(processes=1),
                store=store)
        assert len(store.completed_ids()) == 4

    def test_repair_unrecoverable_manifest_reports_error(self, tmp_path):
        store = _populated_store(tmp_path)
        store.manifest_path.write_text("{broken")
        store.manifest_backup_path.write_text("{also broken")
        report = repair_campaign(store.directory)
        assert not report.ok

    def test_repair_seals_legacy_records(self, tmp_path):
        store = _populated_store(tmp_path, n=2)
        # simulate a pre-resilience store: strip the checksums
        lines = [json.loads(ln)
                 for ln in store.results_path.read_text().splitlines()]
        for rec in lines:
            rec.pop(integrity.CHECKSUM_FIELD)
        store.results_path.write_text(
            "".join(json.dumps(r) + "\n" for r in lines))
        assert len(store.completed_ids()) == 2  # legacy accepted
        repair_campaign(store.directory)
        scan = integrity.scan_jsonl(store.results_path)
        assert scan.legacy == 0 and len(scan.records) == 2

    def test_verify_cli_exit_codes(self, tmp_path, capsys):
        from repro.campaign.__main__ import EXIT_VERIFY, main

        store = _populated_store(tmp_path)
        assert main(["verify", str(store.directory)]) == 0
        full = store.manifest_path.read_text()
        store.manifest_path.write_text(full[: len(full) // 2])
        assert main(["verify", str(store.directory)]) == EXIT_VERIFY
        assert main(["repair", str(store.directory)]) == 0
        capsys.readouterr()  # drain the human-readable reports
        assert main(["verify", str(store.directory), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True

    def test_normalize_record_drops_scheduling_noise(self):
        rec = {"unit_id": "u/0", "ok": True, "elapsed": 1.25, "retries": 2,
               integrity.CHECKSUM_FIELD: "abc", "value": {"items": 1}}
        assert normalize_record(rec) == \
            {"unit_id": "u/0", "ok": True, "value": {"items": 1}}


# ---------------------------------------------------------------------
# golden cache disk spill
# ---------------------------------------------------------------------

class TestGoldenDiskSpill:
    def test_spill_and_reload_across_cache_instances(self, tmp_path):
        a = GoldenCache()
        a.persist_to(tmp_path / "goldens")
        run = a.get("vectoradd", "tiny", 1)
        assert a.misses == 1
        assert list((tmp_path / "goldens").glob("*.npz"))

        b = GoldenCache()  # fresh process, same directory
        b.persist_to(tmp_path / "goldens")
        reloaded = b.get("vectoradd", "tiny", 1)
        assert b.misses == 0 and b.disk_hits == 1
        assert reloaded.digest == run.digest
        assert reloaded.dynamic_instructions == run.dynamic_instructions
        assert (reloaded.bits == run.bits).all()

    def test_corrupt_entry_recomputed_and_rewritten(self, tmp_path):
        a = GoldenCache()
        a.persist_to(tmp_path / "goldens")
        run = a.get("vectoradd", "tiny", 1)
        path = next((tmp_path / "goldens").glob("*.npz"))
        path.write_bytes(b"not an npz file at all")

        b = GoldenCache()
        b.persist_to(tmp_path / "goldens")
        recomputed = b.get("vectoradd", "tiny", 1)
        assert b.disk_rejects == 1 and b.misses == 1
        assert recomputed.digest == run.digest
        # rewritten entry is valid again
        c = GoldenCache()
        c.persist_to(tmp_path / "goldens")
        c.get("vectoradd", "tiny", 1)
        assert c.disk_hits == 1 and c.disk_rejects == 0

    def test_verify_flags_and_repair_removes_corrupt_goldens(self, tmp_path):
        store = _populated_store(tmp_path)
        gdir = store.directory / "goldens"
        gdir.mkdir()
        cache = GoldenCache()
        cache.persist_to(gdir)
        cache.get("vectoradd", "tiny", 1)
        bad = gdir / "deadbeef.npz"
        bad.write_bytes(b"garbage")

        report = verify_campaign(store.directory)
        assert report.ok  # goldens are warnings, not errors
        assert any(f.file.endswith("deadbeef.npz") for f in report.findings)
        assert report.records["goldens"] == 1

        repair_campaign(store.directory)
        assert not bad.exists()
        assert len(list(gdir.glob("*.npz"))) == 1
