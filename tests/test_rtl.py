"""Tests for the RTL injection layer: sites, injector mechanics, and the
paper-shape properties of the AVF and t-MxM campaigns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rtl import (
    RtlInjection,
    RtlSite,
    module_sites,
    run_microbench_avf,
    run_rtl_injection,
    run_tmxm_campaign,
)
from repro.rtl.avf import _make_runner, modules_for_bench
from repro.rtl.sites import control_fraction
from repro.syndrome import SpatialPattern
from repro.workloads.microbench import build_microbench


class TestSites:
    def test_all_modules_have_sites(self):
        for m in ("fu_int", "fu_fp32", "fu_sfu", "scheduler", "pipeline"):
            assert len(module_sites(m)) > 100

    def test_unknown_module_rejected(self):
        with pytest.raises(KeyError):
            module_sites("dram")

    def test_fp32_larger_than_int(self):
        # paper Table 2: the FP32 unit is >3x the INT unit
        assert len(module_sites("fu_fp32")) > len(module_sites("fu_int"))

    def test_pipeline_control_fraction_near_paper(self):
        # paper: ~16% of pipeline registers are control
        frac = control_fraction("pipeline")
        assert 0.05 < frac < 0.30

    def test_site_str(self):
        s = RtlSite("pipeline", "ctl_opcode", 1, 3)
        assert "pipeline" in str(s) and "b3" in str(s)


class TestInjectorMechanics:
    def _golden_and_runner(self, bench="IADD"):
        mb = build_microbench(bench, "M")
        runner = _make_runner(mb)
        return mb, runner, runner(None)

    def test_null_injection_is_masked_when_bit_matches(self):
        # stuck a result bit at the value it already has for all threads:
        # outcome must not be DUE, and determinism must hold
        mb, runner, golden = self._golden_and_runner()
        site = RtlSite("fu_int", "res", 0, 31)
        out1 = run_rtl_injection(runner, RtlInjection(site, 0), golden, False)
        out2 = run_rtl_injection(runner, RtlInjection(site, 0), golden, False)
        assert out1.outcome == out2.outcome

    def test_result_bit_corrupts_single_thread(self):
        mb, runner, golden = self._golden_and_runner()
        # force bit 20 of the result of per-thread unit 5
        site = RtlSite("fu_int", "res", 5, 20)
        g = golden.copy()
        want_flip = (g[5] & (1 << 20)) != 0
        out = run_rtl_injection(runner, RtlInjection(site, 0 if want_flip else 1),
                                golden, False)
        assert out.outcome == "sdc"
        assert 5 in out.corrupted.tolist()

    def test_internal_sites_never_propagate(self):
        mb, runner, golden = self._golden_and_runner()
        for bit in (0, 10, 31):
            site = RtlSite("fu_int", "internal", 3, bit)
            out = run_rtl_injection(runner, RtlInjection(site, 1), golden, False)
            assert out.outcome == "masked"

    def test_scheduler_mask_stuck0_desschedules_thread(self):
        mb, runner, golden = self._golden_and_runner()
        site = RtlSite("scheduler", "active_bit", 0, 9)
        out = run_rtl_injection(runner, RtlInjection(site, 0), golden, False)
        assert out.outcome == "sdc"
        # thread 9 of both warps never stores its output
        assert set(out.corrupted.tolist()) == {9, 41}

    def test_sfu_faults_hit_only_sfu_ops(self):
        mb, runner, golden = self._golden_and_runner("IADD")
        site = RtlSite("fu_sfu", "sfu_in", 0, 12)
        out = run_rtl_injection(runner, RtlInjection(site, 1), golden, False)
        assert out.outcome == "masked"  # no SFU instructions in IADD

    def test_sfu_busy_hangs_sfu_bench(self):
        mb = build_microbench("FSIN", "M")
        runner = _make_runner(mb)
        golden = runner(None)
        site = RtlSite("fu_sfu", "sfu_busy", 0, 0)
        out = run_rtl_injection(runner, RtlInjection(site, 1), golden, True)
        assert out.outcome == "due"

    def test_modules_for_bench_skips_idle_fus(self):
        assert "fu_int" in modules_for_bench("IADD")
        assert all(not m.startswith("fu_") for m in modules_for_bench("GLD"))
        assert all(not m.startswith("fu_") for m in modules_for_bench("BRA"))
        assert "fu_sfu" in modules_for_bench("FEXP")


@pytest.fixture(scope="module")
def avf_campaign():
    return run_microbench_avf(
        benches=["IADD", "FADD", "FSIN", "GLD"],
        values_per_range=1, max_sites_per_module=60, input_ranges=("M",),
    )


class TestAvfPaperShapes:
    def test_rows_cover_requested_grid(self, avf_campaign):
        pairs = {(r.bench, r.module) for r in avf_campaign.rows}
        assert ("IADD", "fu_int") in pairs
        assert ("GLD", "scheduler") in pairs
        assert ("GLD", "fu_int") not in pairs  # FU idle for memory bench

    def test_scheduler_avf_below_pipeline_on_microbenches(self, avf_campaign):
        # paper Fig 3: scheduler faults less likely to impact the simple
        # micro-benchmarks than pipeline faults
        for bench in ("IADD", "FADD"):
            sched = avf_campaign.row("scheduler", bench)
            pipe = avf_campaign.row("pipeline", bench)
            assert sched.avf_sdc + sched.avf_due < pipe.avf_sdc + pipe.avf_due

    def test_fp32_avf_below_int(self, avf_campaign):
        # paper: larger FP32 area -> lower AVF than the integer unit
        fp = avf_campaign.row("fu_fp32", "FADD")
        it = avf_campaign.row("fu_int", "IADD")
        assert fp.avf_sdc + fp.avf_due < it.avf_sdc + it.avf_due

    def test_sfu_corruptions_are_multithread(self, avf_campaign):
        sfu = avf_campaign.row("fu_sfu", "FSIN")
        assert sfu.n_sdc_multi > sfu.n_sdc_single
        assert sfu.mean_corrupted_threads > 4

    def test_int_fu_corruptions_are_fewthread(self, avf_campaign):
        fu = avf_campaign.row("fu_int", "IADD")
        assert 0 < fu.mean_corrupted_threads <= 4

    def test_scheduler_sdcs_multithread(self, avf_campaign):
        sched = avf_campaign.row("scheduler", "IADD")
        assert sched.n_sdc_multi >= sched.n_sdc_single

    def test_syndromes_collected_for_sdc_rows(self, avf_campaign):
        syn = avf_campaign.syndrome("FADD", "pipeline", "M")
        assert syn.size > 0
        assert np.all(syn >= 0)

    def test_missing_row_raises(self, avf_campaign):
        with pytest.raises(KeyError):
            avf_campaign.row("fu_int", "GLD")


@pytest.fixture(scope="module")
def tmxm():
    return run_tmxm_campaign(values_per_type=1, max_sites_per_module=110)


class TestTmxmPaperShapes:
    def test_pipeline_rows_dominate(self, tmxm):
        # Table 3: pipeline injection mostly produces corrupted rows
        dist = tmxm.pattern_distribution("pipeline")
        assert dist[SpatialPattern.ROW] == max(dist.values())

    def test_whole_columns_unlikely(self, tmxm):
        # Table 3: a whole corrupted column is very unlikely for both units
        for module in ("scheduler", "pipeline"):
            dist = tmxm.pattern_distribution(module)
            assert dist[SpatialPattern.COL] <= 10.0

    def test_multiple_corruptions_dominate_sdcs(self, tmxm):
        # Fig 6: at least half of the SDCs corrupt multiple elements
        for module in ("scheduler", "pipeline"):
            for tile in ("max", "random"):
                cell = tmxm.cell(module, tile)
                if cell.n_sdc_single + cell.n_sdc_multi > 5:
                    assert cell.multi_fraction_of_sdcs >= 0.5

    def test_zero_tile_masks_pipeline_sdcs(self, tmxm):
        # Fig 6: the pipeline SDC AVF is much lower for the Zero tile
        z = tmxm.cell("pipeline", "zero")
        m = tmxm.cell("pipeline", "max")
        assert z.avf_sdc_multi + z.avf_sdc_single < \
            m.avf_sdc_multi + m.avf_sdc_single

    def test_row_syndromes_available_for_fig8(self, tmxm):
        rows = tmxm.syndromes_by_pattern("pipeline", SpatialPattern.ROW)
        assert len(rows) > 0
        assert all(r.size >= 2 for r in rows)

    def test_deterministic(self):
        a = run_tmxm_campaign(values_per_type=1, max_sites_per_module=30,
                              tile_types=("random",))
        b = run_tmxm_campaign(values_per_type=1, max_sites_per_module=30,
                              tile_types=("random",))
        ca = a.cell("pipeline", "random")
        cb = b.cell("pipeline", "random")
        assert (ca.n_due, ca.n_sdc_single, ca.n_sdc_multi) == \
            (cb.n_due, cb.n_sdc_single, cb.n_sdc_multi)
