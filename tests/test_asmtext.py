"""Round-trip tests for the textual assembler/disassembler."""

from __future__ import annotations

import pytest

from repro.common.exceptions import AssemblerError
from repro.isa.asmtext import assemble, disassemble
from repro.workloads import EVALUATION_APPS, get_workload


def _roundtrip(program):
    text = disassemble(program)
    back = assemble(text)
    assert len(back) == len(program)
    for a, b in zip(back.instructions, program.instructions):
        assert a.op == b.op
        assert a.dst == b.dst and a.srcs == b.srcs
        assert a.imm == b.imm and a.use_imm == b.use_imm
        assert a.pred == b.pred and a.pred_neg == b.pred_neg
        assert a.pdst == b.pdst and a.aux == b.aux
        assert a.reconv_pc == b.reconv_pc
    assert back.nregs == program.nregs
    assert back.shared_words == program.shared_words
    return text


@pytest.mark.parametrize("name", sorted(EVALUATION_APPS))
def test_roundtrip_every_evaluation_kernel(name):
    w = get_workload(name, scale="tiny")
    for prog in w.programs().values():
        _roundtrip(prog)


def test_roundtrip_microbenches():
    from repro.workloads.microbench import MICROBENCH_NAMES, build_microbench

    for n in MICROBENCH_NAMES:
        _roundtrip(build_microbench(n, "M").program)


def test_assemble_simple_text():
    prog = assemble("""
    .kernel demo nregs=8 shared=0
    start:
      MOV32I R1, 0x2a
      IADD R2, R1, 0x1
      @P0 BRA start reconv=done  ; P0 is false: never taken
    done:
      EXIT
    """)
    assert prog.name == "demo"
    assert prog.nregs == 8
    assert prog[0].imm == 0x2A
    assert prog[2].reconv_pc == 3

    # assembled code actually runs
    import numpy as np

    from repro.gpusim import Device, DeviceConfig

    dev = Device(DeviceConfig(global_mem_words=1 << 12))
    dev.launch(prog, 1, 1)


def test_comments_and_blank_lines_ignored():
    prog = assemble("""
    .kernel c nregs=4 shared=0
      NOP        ; does nothing

      EXIT       ; bye
    """)
    assert len(prog) == 2


def test_bad_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble(".kernel x nregs=4 shared=0\n  FDIV R1, R2, R3\n  EXIT\n")


def test_undefined_label_rejected():
    with pytest.raises(AssemblerError):
        assemble(".kernel x nregs=4 shared=0\n  BRA nowhere\n  EXIT\n")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble(".kernel x nregs=4 shared=0\na:\na:\n  EXIT\n")


def test_setp_requires_suffix():
    with pytest.raises(AssemblerError):
        assemble(".kernel x nregs=4 shared=0\n  ISETP P0, R1, R2\n  EXIT\n")


def test_bad_memory_operand_rejected():
    with pytest.raises(AssemblerError):
        assemble(".kernel x nregs=4 shared=0\n  GLD R1, R2\n  EXIT\n")
