"""Static injection-site pruning: soundness rules and the campaign
equivalence property.

The load-bearing guarantee is that ``--static-prune`` changes *what is
simulated*, never *what is reported*: a pruned campaign must produce
bit-for-bit identical EPR classifications while running strictly fewer
simulations.
"""

from __future__ import annotations

import pytest

from repro.campaign.engine import EngineConfig, execute
from repro.campaign.plans import get_spec
from repro.campaign.telemetry import Telemetry
from repro.errormodels.descriptor import ErrorDescriptor
from repro.errormodels.models import ErrorModel
from repro.isa.instruction import RZ, Instruction
from repro.isa.opcodes import CmpOp, Op
from repro.isa.program import Program
from repro.staticanalysis import StaticPruner


def _prog(instrs, nregs=8, name="k", shared_words=0) -> Program:
    p = Program(name=name, instructions=list(instrs), nregs=nregs,
                shared_words=shared_words)
    p.validate()
    return p


def _store_and_exit(reg):
    return [Instruction(Op.GST, srcs=(reg, reg)), Instruction(Op.EXIT)]


class TestPruneRules:
    def test_r0_empty_thread_mask(self):
        prog = _prog([Instruction(Op.IADD, dst=1, srcs=(1,), imm=1,
                                  use_imm=True), *_store_and_exit(1)])
        pruner = StaticPruner([prog])
        d = ErrorDescriptor(model=ErrorModel.IIO, thread_mask=0)
        decision = pruner.classify(d)
        assert decision.masked and decision.rule == "R0"

    def test_r1_no_target_instruction(self):
        # IMD targets STS only; a kernel without shared stores never
        # activates it
        prog = _prog([Instruction(Op.IADD, dst=1, srcs=(1,), imm=1,
                                  use_imm=True), *_store_and_exit(1)])
        pruner = StaticPruner([prog])
        decision = pruner.classify(ErrorDescriptor(model=ErrorModel.IMD))
        assert decision.masked and decision.rule == "R1"

    def test_r2_dead_destination_iio(self):
        # the immediate-add result is never read -> corruption is inert
        # (R1 is zero-init and never written, so the IADD is the only
        # IIO target in the program)
        prog = _prog([
            Instruction(Op.IADD, dst=2, srcs=(1,), imm=1, use_imm=True),
            *_store_and_exit(1),
        ])
        decision = StaticPruner([prog]).classify(
            ErrorDescriptor(model=ErrorModel.IIO))
        assert decision.masked and decision.rule == "R2"

    def test_live_destination_not_pruned(self):
        prog = _prog([
            Instruction(Op.MOV32I, dst=1, imm=3),
            Instruction(Op.IADD, dst=2, srcs=(1,), imm=1, use_imm=True),
            *_store_and_exit(2),                    # result IS observed
        ])
        decision = StaticPruner([prog]).classify(
            ErrorDescriptor(model=ErrorModel.IIO))
        assert not decision.masked and decision.rule == "live"

    def test_wv_mask_without_bit0_is_identity(self):
        prog = _prog([
            Instruction(Op.ISETP, pdst=0, srcs=(1,), imm=0, use_imm=True,
                        aux=int(CmpOp.GT)),
            Instruction(Op.IADD, dst=1, srcs=(1,), imm=1, use_imm=True,
                        pred=0),
            *_store_and_exit(1),
        ])
        pruner = StaticPruner([prog])
        # the injector flips `wrong & 1`; bit 0 clear never flips anything
        masked = pruner.classify(
            ErrorDescriptor(model=ErrorModel.WV, bit_err_mask=0x2))
        live = pruner.classify(
            ErrorDescriptor(model=ErrorModel.WV, bit_err_mask=0x1))
        assert masked.masked and masked.rule == "R2"
        assert not live.masked

    def test_ial_enable_on_uniform_code_is_identity(self):
        prog = _prog([Instruction(Op.IADD, dst=1, srcs=(1,), imm=1,
                                  use_imm=True), *_store_and_exit(1)])
        pruner = StaticPruner([prog])
        enable = pruner.classify(ErrorDescriptor(
            model=ErrorModel.IAL, lane_enable_mode="enable"))
        assert enable.masked and enable.rule == "R2"

    def test_ial_disable_needs_dead_destination(self):
        live = _prog([Instruction(Op.IADD, dst=1, srcs=(1,), imm=1,
                                  use_imm=True), *_store_and_exit(1)])
        dead = _prog([
            Instruction(Op.MOV32I, dst=1, imm=3),
            Instruction(Op.IADD, dst=2, srcs=(1,), imm=1, use_imm=True),
            *_store_and_exit(1),
        ])
        d = ErrorDescriptor(model=ErrorModel.IAL, lane_enable_mode="disable")
        assert not StaticPruner([live]).classify(d).masked
        assert StaticPruner([dead]).classify(d).masked

    def test_ivra_never_pruned_beyond_r1(self):
        prog = _prog([
            Instruction(Op.MOV32I, dst=1, imm=3),
            Instruction(Op.IADD, dst=2, srcs=(1,), imm=1, use_imm=True),
            *_store_and_exit(1),                    # R2 dead: IRA would prune
        ])
        pruner = StaticPruner([prog])
        # the escaped register index raises InvalidRegisterError -> DUE
        d = ErrorDescriptor(model=ErrorModel.IVRA, bit_err_mask=0x40,
                            err_oper_loc=0)
        assert not pruner.classify(d).masked

    def test_ira_wrong_register_out_of_window_not_pruned(self):
        # a single reg-writing instruction with a dead destination; the
        # store uses RZ so nothing else is an IRA loc-0 target
        prog = _prog([
            Instruction(Op.IADD, dst=2, srcs=(RZ,), imm=1, use_imm=True),
            Instruction(Op.GST, srcs=(RZ, RZ)),
            Instruction(Op.EXIT),
        ], nregs=4)
        pruner = StaticPruner([prog])
        # dst=2 ^ 0x4 = 6 >= nregs: duplicate write raises -> DUE
        d = ErrorDescriptor(model=ErrorModel.IRA, bit_err_mask=0x4,
                            err_oper_loc=0)
        assert not pruner.classify(d).masked
        # dst=2 ^ 0x1 = 3 < nregs and dead -> prunable
        d2 = ErrorDescriptor(model=ErrorModel.IRA, bit_err_mask=0x1,
                             err_oper_loc=0)
        assert pruner.classify(d2).masked

    def test_ira_source_swap_on_memory_op_not_pruned(self):
        prog = _prog([
            Instruction(Op.MOV32I, dst=1, imm=0),
            Instruction(Op.GST, srcs=(1, 1)),
            Instruction(Op.EXIT),
        ])
        d = ErrorDescriptor(model=ErrorModel.IRA, bit_err_mask=0x1,
                            err_oper_loc=1)
        assert not StaticPruner([prog]).classify(d).masked

    def test_ioc_identity_replacement_pruned(self):
        prog = _prog([Instruction(Op.IADD, dst=1, srcs=(1,), imm=1,
                                  use_imm=True), *_store_and_exit(1)])
        pruner = StaticPruner([prog])
        same = ErrorDescriptor(model=ErrorModel.IOC, replacement_op=Op.IADD)
        assert pruner.classify(same).masked
        # BRA is not a computable replacement: illegal instruction -> DUE
        other = ErrorDescriptor(model=ErrorModel.IOC, replacement_op=Op.BRA)
        assert not pruner.classify(other).masked


class TestCampaignEquivalence:
    """Seeded pruned and unpruned campaigns must agree bit-for-bit."""

    APPS = ["vectoradd", "mxm"]
    MODELS = ["WV", "IIO", "IRA", "IAL", "IMD"]

    def _run(self, static_prune: bool):
        spec = get_spec("epr")
        config = spec.default_config(
            apps=self.APPS, models=self.MODELS, injections_per_model=8,
            chunk=4, scale="tiny", static_prune=static_prune)
        plan = spec.build(config)
        telemetry = Telemetry()
        results = execute(plan.units, EngineConfig(processes=2),
                          context=plan.context, telemetry=telemetry)
        return spec.aggregate(config, results), telemetry, spec

    def test_pruned_campaign_identical_and_smaller(self):
        base, base_tel, spec = self._run(static_prune=False)
        pruned, pruned_tel, _ = self._run(static_prune=True)

        for app in self.APPS:
            for model in (ErrorModel(m) for m in self.MODELS):
                assert base.counts(app, model) == pruned.counts(app, model), \
                    f"EPR classification drifted for ({app}, {model.value})"
        assert base.overall_epr() == pruned.overall_epr()

        n_pruned = sum(o.pruned for o in pruned.outcomes)
        assert n_pruned > 0, "static pruning never fired"
        assert sum(o.pruned for o in base.outcomes) == 0
        assert len(base.outcomes) == len(pruned.outcomes)
        # every pruned outcome reconciles as Masked
        assert all(o.outcome == "masked"
                   for o in pruned.outcomes if o.pruned)

        # the speedup is visible in telemetry: same item count, fewer sims
        assert pruned_tel.report()["pruned"] == n_pruned
        assert base_tel.report()["pruned"] == 0
        assert pruned_tel.report()["items"] == base_tel.report()["items"]

        # and in the summary
        assert spec.summarize(pruned)["pruned"] == n_pruned

    def test_unit_ids_unchanged_by_pruning(self):
        spec = get_spec("epr")
        ids = []
        for flag in (False, True):
            config = spec.default_config(
                apps=["vectoradd"], models=["WV"], injections_per_model=4,
                chunk=2, scale="tiny", static_prune=flag)
            plan = spec.build(config)
            ids.append([u.unit_id for u in plan.units])
        assert ids[0] == ids[1]
