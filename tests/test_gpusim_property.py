"""Property-based tests of the executor against a NumPy mirror.

Hypothesis generates random straight-line ALU programs; the same opcode
sequence is evaluated warp-wide by the simulator and by a direct NumPy
model — results must match bit-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device, DeviceConfig
from repro.isa import KernelBuilder, Op
from repro.workloads.kutil import elem_addr, global_tid_x

NREGS_DATA = 6  # r0..r5 hold data

BIN_OPS = [Op.IADD, Op.ISUB, Op.IMUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR]

op_step = st.tuples(
    st.sampled_from(BIN_OPS),
    st.integers(0, NREGS_DATA - 1),   # dst
    st.integers(0, NREGS_DATA - 1),   # src a
    st.integers(0, NREGS_DATA - 1),   # src b
)


def _numpy_eval(ops, init: np.ndarray) -> np.ndarray:
    regs = [init[i].copy() for i in range(NREGS_DATA)]
    for op, d, a, b in ops:
        x, y = regs[a], regs[b]
        if op is Op.IADD:
            r = x + y
        elif op is Op.ISUB:
            r = x - y
        elif op is Op.IMUL:
            r = (x.astype(np.uint64) * y).astype(np.uint32)
        elif op is Op.AND:
            r = x & y
        elif op is Op.OR:
            r = x | y
        elif op is Op.XOR:
            r = x ^ y
        elif op is Op.SHL:
            r = x << (y & np.uint32(31))
        else:
            r = x >> (y & np.uint32(31))
        regs[d] = r
    return np.stack(regs)


@given(st.lists(op_step, min_size=1, max_size=20), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_random_alu_program_matches_numpy(ops, seed):
    rng = np.random.default_rng(seed)
    n = 32
    init = rng.integers(0, 2**32, size=(NREGS_DATA, n), dtype=np.uint64
                        ).astype(np.uint32)

    k = KernelBuilder("prop", nregs=32)
    g = global_tid_x(k)
    in_ptr = k.load_param(0)
    out_ptr = k.load_param(1)
    data = k.regs(NREGS_DATA)
    addr = k.reg()
    off = k.reg()
    k.shl(off, g, imm=2)
    for i, r in enumerate(data):
        # address = in_ptr + (i*n + g)*4
        k.mov32i(addr, i * n * 4)
        k.iadd(addr, addr, in_ptr)
        k.iadd(addr, addr, off)
        k.gld(r, addr)
    for op, d, a, b in ops:
        getattr(k, {
            Op.IADD: "iadd", Op.ISUB: "isub", Op.IMUL: "imul",
            Op.AND: "and_", Op.OR: "or_", Op.XOR: "xor",
            Op.SHL: "shl", Op.SHR: "shr",
        }[op])(data[d], data[a], data[b])
    for i, r in enumerate(data):
        k.mov32i(addr, i * n * 4)
        k.iadd(addr, addr, out_ptr)
        k.iadd(addr, addr, off)
        k.gst(addr, r)
    k.exit()

    dev = Device(DeviceConfig(global_mem_words=1 << 16))
    pin = dev.alloc_array(init)
    pout = dev.alloc(NREGS_DATA * n)
    dev.launch(k.build(), 1, n, params=[pin, pout])
    got = dev.read(pout, NREGS_DATA * n).reshape(NREGS_DATA, n)
    np.testing.assert_array_equal(got, _numpy_eval(ops, init))
