"""Correctness of every workload against a host reference.

The simulator is bit-deterministic, so workloads that provide a
``reference()`` mirroring the kernel's float32 operation order must match
bit-exactly; the rest are checked for structural properties.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import EVALUATION_APPS, PROFILING_WORKLOADS, get_workload
from repro.workloads.base import default_launcher
from repro.gpusim import Device, DeviceConfig


def _run(w):
    dev = Device(DeviceConfig(global_mem_words=1 << 20))
    return w.run(dev, default_launcher(dev))


EXACT_REFERENCE_APPS = [
    "mxm", "gemm", "hotspot", "gaussian", "bfs", "lud", "accl", "nw",
    "cfd", "quicksort", "mergesort", "lenet", "yolov3",
]


class TestEvaluationApps:
    @pytest.mark.parametrize("name", sorted(EVALUATION_APPS))
    def test_runs_and_is_deterministic(self, name):
        w = get_workload(name, scale="tiny")
        out1 = _run(w)
        out2 = _run(w)
        assert out1.dtype == np.uint32
        assert out1.size > 0
        np.testing.assert_array_equal(out1, out2)

    @pytest.mark.parametrize("name", EXACT_REFERENCE_APPS)
    def test_matches_host_reference(self, name):
        w = get_workload(name, scale="tiny")
        got = _run(w)
        ref = w.reference()
        ref_bits = np.ascontiguousarray(ref).view(np.uint32).ravel()
        np.testing.assert_array_equal(got, ref_bits, err_msg=name)

    def test_vectoradd_values(self):
        w = get_workload("vectoradd", scale="tiny")
        got = _run(w).view(np.float32)
        np.testing.assert_array_equal(got, w.a + w.b)

    def test_lava_forces_finite_and_nontrivial(self):
        w = get_workload("lava", scale="tiny")
        f = _run(w).view(np.float32)
        assert np.all(np.isfinite(f))
        assert np.any(f != 0)

    def test_bfs_costs_match_networkx_distances(self):
        pytest.importorskip("networkx")
        import networkx as nx

        w = get_workload("bfs", scale="tiny")
        got = _run(w).view(np.int32)
        g = nx.DiGraph()
        g.add_nodes_from(range(w.params["n"]))
        for u in range(w.params["n"]):
            for e in range(w.offsets[u], w.offsets[u + 1]):
                g.add_edge(u, int(w.edges[e]))
        dist = nx.single_source_shortest_path_length(g, w.source)
        for v in range(w.params["n"]):
            assert got[v] == dist.get(v, -1)

    def test_sorts_actually_sort(self):
        for name in ("quicksort", "mergesort"):
            w = get_workload(name, scale="tiny")
            got = _run(w).view(np.int32)
            np.testing.assert_array_equal(got, np.sort(w.data), err_msg=name)

    def test_scales_differ(self):
        tiny = get_workload("gemm", scale="tiny")
        small = get_workload("gemm", scale="small")
        assert tiny.params["n"] < small.params["n"]

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            get_workload("gemm", scale="galactic")

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_seed_changes_data(self):
        w1 = get_workload("vectoradd", scale="tiny", seed=1)
        w2 = get_workload("vectoradd", scale="tiny", seed=2)
        assert not np.array_equal(w1.a, w2.a)

    def test_metadata_table1(self):
        # Table 1 invariants: suites and datatypes as published
        meta = {n: cls.meta for n, cls in EVALUATION_APPS.items()}
        assert meta["bfs"].data_type == "INT32"
        assert meta["lenet"].suite == "Darknet"
        assert meta["accl"].suite == "NUPAR"
        assert sum(m.data_type == "INT32" for m in meta.values()) == 5
        assert len(meta) == 15


PROFILING_EXACT = [
    "reduction", "svmul", "gray_filter", "sobel", "nn", "scan_3d",
    "transpose", "backprop", "fft",
]


class TestProfilingSuite:
    def test_has_14_workloads(self):
        assert len(PROFILING_WORKLOADS) == 14

    @pytest.mark.parametrize("name", PROFILING_EXACT)
    def test_matches_reference(self, name):
        w = get_workload(name, scale="tiny")
        got = _run(w)
        ref_bits = np.ascontiguousarray(w.reference()).view(np.uint32).ravel()
        np.testing.assert_array_equal(got, ref_bits, err_msg=name)

    def test_fft_matches_numpy_fft(self):
        w = get_workload("fft", scale="small")
        out = _run(w).view(np.float32)
        n = w.params["n"]
        spec = np.fft.fft(w.re.astype(np.float64) + 1j * w.im.astype(np.float64))
        np.testing.assert_allclose(out[:n], spec.real, atol=1e-3)
        np.testing.assert_allclose(out[n:], spec.imag, atol=1e-3)

    def test_transpose_is_involution(self):
        w = get_workload("transpose", scale="tiny")
        n = w.params["n"]
        got = _run(w).view(np.float32).reshape(n, n)
        np.testing.assert_array_equal(got.T, w.a)
