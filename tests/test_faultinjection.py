"""Tests for the gate-level fault-injection campaign layer."""

from __future__ import annotations

import pytest

from repro.errormodels import ErrorModel, ErrorGroup, GROUP_OF
from repro.faultinjection import CampaignConfig, GateCampaignResult, run_gate_campaign
from repro.faultinjection.campaign import FaultRecord
from repro.gatelevel.faults import StuckAtFault
from repro.profiling import stimuli_from_program
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def stimuli():
    w = get_workload("gemm", scale="tiny")
    return stimuli_from_program(w.program())


@pytest.fixture(scope="module")
def wsc_result(stimuli):
    return run_gate_campaign(
        CampaignConfig(unit="wsc", max_faults=512, max_stimuli=16), stimuli
    )


@pytest.fixture(scope="module")
def decoder_result(stimuli):
    return run_gate_campaign(
        CampaignConfig(unit="decoder", max_faults=512, max_stimuli=16), stimuli
    )


class TestCampaignMechanics:
    def test_categories_partition_faults(self, wsc_result):
        counts = wsc_result.category_counts()
        assert sum(counts.values()) == wsc_result.total_faults
        assert wsc_result.total_faults == 512

    def test_rates_sum_to_100(self, wsc_result):
        assert sum(wsc_result.category_rates().values()) == pytest.approx(100.0)

    def test_all_categories_present(self, decoder_result):
        counts = decoder_result.category_counts()
        # Table 5 structure: every bucket is populated
        assert counts["sw_error"] > 0
        assert counts["masked"] > 0
        assert counts["uncontrollable"] > 0
        assert counts["hang"] > 0

    def test_record_category_priority(self):
        r = FaultRecord(StuckAtFault(0, 0))
        assert r.category == "uncontrollable"
        r.activated = True
        assert r.category == "masked"
        r.propagated = True
        assert r.category == "sw_error"
        r.hang = True
        assert r.category == "hang"

    def test_deterministic(self, stimuli):
        cfg = CampaignConfig(unit="decoder", max_faults=128, max_stimuli=8)
        a = run_gate_campaign(cfg, stimuli)
        b = run_gate_campaign(cfg, stimuli)
        assert a.category_counts() == b.category_counts()
        assert a.fapr() == b.fapr()

    def test_multiprocessing_matches_serial(self, stimuli):
        cfg1 = CampaignConfig(unit="decoder", max_faults=256, max_stimuli=8,
                              processes=1, words=2)
        cfg2 = CampaignConfig(unit="decoder", max_faults=256, max_stimuli=8,
                              processes=2, words=2)
        a = run_gate_campaign(cfg1, stimuli)
        b = run_gate_campaign(cfg2, stimuli)
        assert a.category_counts() == b.category_counts()
        assert a.faults_per_error() == b.faults_per_error()


class TestPaperShapes:
    """The qualitative results the paper reports for each unit."""

    def test_wsc_dominated_by_parallel_management(self, wsc_result):
        fapr = wsc_result.fapr()
        par = sum(v for m, v in fapr.items()
                  if GROUP_OF[m] is ErrorGroup.PARALLEL_MGMT)
        other = sum(v for m, v in fapr.items()
                    if GROUP_OF[m] is not ErrorGroup.PARALLEL_MGMT)
        assert par > other  # paper: 54.87% of WSC error faults

    def test_wsc_has_iat_and_iaw(self, wsc_result):
        per = wsc_result.faults_per_error()
        assert per.get(ErrorModel.IAT, 0) > 0
        assert per.get(ErrorModel.IAW, 0) > 0

    def test_decoder_widest_spectrum(self, wsc_result, decoder_result):
        # paper: decoder produces the widest spectrum of error categories
        assert len(decoder_result.faults_per_error()) >= \
            len(wsc_result.faults_per_error())

    def test_decoder_has_memory_models(self, decoder_result):
        per = decoder_result.faults_per_error()
        assert per.get(ErrorModel.IMS, 0) > 0
        assert per.get(ErrorModel.IMD, 0) > 0

    def test_hang_rate_small(self, wsc_result, decoder_result):
        # paper: 1.2% .. 3.5% of faults hang the hardware
        for res in (wsc_result, decoder_result):
            assert res.category_rates()["hang"] < 15.0

    def test_times_produced_at_least_faults(self, decoder_result):
        per_fault = decoder_result.faults_per_error()
        times = decoder_result.times_produced()
        for m, n in per_fault.items():
            assert times[m] >= n

    def test_some_faults_multi_model(self, decoder_result):
        # paper: a single permanent fault may produce several error types
        assert decoder_result.multi_model_fault_fraction() > 0
