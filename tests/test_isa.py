"""Tests for the ISA: opcodes, instructions, encoding, builder, program."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.exceptions import AssemblerError, IllegalInstructionError
from repro.isa import (
    CmpOp,
    Instruction,
    KernelBuilder,
    MemSpace,
    Op,
    OPCODE_INFO,
    PT,
    RZ,
    SpecialReg,
    decode,
    encode,
)
from repro.isa.encoding import EncodedInstruction
from repro.isa.opcodes import OpClass, is_valid_opcode


class TestOpcodes:
    def test_every_opcode_has_info(self):
        for op in Op:
            assert op in OPCODE_INFO

    def test_opcode_space_is_sparse(self):
        invalid = [c for c in range(256) if not is_valid_opcode(c)]
        assert len(invalid) > 200  # IVOC needs room to land on

    def test_mem_ops_marked(self):
        for op in (Op.GLD, Op.GST, Op.LDS, Op.STS, Op.LDC):
            assert OPCODE_INFO[op].is_mem

    def test_setp_write_predicates(self):
        assert OPCODE_INFO[Op.ISETP].writes_pred
        assert OPCODE_INFO[Op.FSETP].writes_pred
        assert not OPCODE_INFO[Op.ISETP].writes_reg

    def test_class_partition(self):
        classes = {OPCODE_INFO[op].op_class for op in Op}
        assert classes == set(OpClass)


class TestInstruction:
    def test_operand_count_enforced(self):
        with pytest.raises(AssemblerError):
            Instruction(Op.IADD, dst=0, srcs=(1,))  # needs 2

    def test_imm_replaces_last_source(self):
        i = Instruction(Op.IADD, dst=0, srcs=(1,), imm=5, use_imm=True)
        assert i.use_imm
        with pytest.raises(AssemblerError):
            Instruction(Op.GLD, dst=0, srcs=(1,), use_imm=True)  # no imm form

    def test_register_range_checked(self):
        with pytest.raises(AssemblerError):
            Instruction(Op.MOV, dst=300, srcs=(0,))

    def test_predicate_range_checked(self):
        with pytest.raises(AssemblerError):
            Instruction(Op.NOP, pred=9)

    def test_str_smoke(self):
        s = str(Instruction(Op.IADD, dst=3, srcs=(1, 2), pred=2, pred_neg=True))
        assert "IADD" in s and "@!P2" in s


class TestEncoding:
    def test_roundtrip_simple(self):
        i = Instruction(Op.IMAD, dst=4, srcs=(1, 2, 3), pred=2, pred_neg=True)
        assert decode(encode(i)) == i

    def test_roundtrip_imm(self):
        i = Instruction(Op.FMUL, dst=9, srcs=(8,), imm=0x3F800000, use_imm=True)
        assert decode(encode(i)) == i

    def test_roundtrip_setp(self):
        i = Instruction(Op.ISETP, srcs=(1, 2), pdst=3, aux=int(CmpOp.GE))
        assert decode(encode(i)) == i

    def test_roundtrip_mem(self):
        i = Instruction(Op.STS, srcs=(1, 2), imm=64, aux=int(MemSpace.SHARED))
        assert decode(encode(i)) == i

    def test_invalid_opcode_raises(self):
        with pytest.raises(IllegalInstructionError):
            decode(EncodedInstruction(word=0xEE, imm=0))

    @given(st.sampled_from(list(Op)), st.integers(0, 254), st.integers(0, 254),
           st.integers(0, 254), st.integers(0, 254), st.integers(0, 2**32 - 1),
           st.integers(0, 7), st.booleans())
    def test_roundtrip_property(self, op, dst, s0, s1, s2, imm, pred, neg):
        info = OPCODE_INFO[op]
        srcs = (s0, s1, s2)[: info.num_srcs]
        i = Instruction(op, dst=dst, srcs=srcs, imm=imm, pred=pred, pred_neg=neg)
        d = decode(encode(i))
        assert d.op == i.op and d.dst == i.dst and d.srcs == i.srcs
        assert d.imm == i.imm and d.pred == i.pred and d.pred_neg == i.pred_neg


class TestBuilder:
    def test_simple_program(self):
        k = KernelBuilder("t", nregs=8)
        a = k.mov32i_new(41)
        k.iadd(a, a, imm=1)
        k.exit()
        p = k.build()
        assert len(p) == 3
        assert p[0].op is Op.MOV32I

    def test_register_exhaustion(self):
        k = KernelBuilder("t", nregs=2)
        k.reg(), k.reg()
        with pytest.raises(AssemblerError):
            k.reg()

    def test_missing_exit_rejected(self):
        k = KernelBuilder("t", nregs=4)
        k.nop()
        with pytest.raises(AssemblerError):
            k.build()

    def test_undefined_label_rejected(self):
        k = KernelBuilder("t", nregs=4)
        k.bra("nowhere")
        k.exit()
        with pytest.raises(AssemblerError):
            k.build()

    def test_duplicate_label_rejected(self):
        k = KernelBuilder("t", nregs=4)
        k.label("x")
        with pytest.raises(AssemblerError):
            k.label("x")

    def test_if_annotates_reconvergence(self):
        k = KernelBuilder("t", nregs=4)
        p = k.pred()
        with k.if_(p):
            k.nop()
        k.exit()
        prog = k.build()
        bra = prog[0]
        assert bra.op is Op.BRA
        assert bra.reconv_pc == bra.imm  # skips to endif == reconv point

    def test_if_else_structure(self):
        k = KernelBuilder("t", nregs=4)
        p = k.pred()
        with k.if_else(p) as orelse:
            k.mov32i(0, 1)
            orelse()
            k.mov32i(0, 2)
        k.exit()
        prog = k.build()
        assert prog[0].op is Op.BRA and prog[0].reconv_pc is not None

    def test_if_else_requires_else(self):
        k = KernelBuilder("t", nregs=4)
        p = k.pred()
        with pytest.raises(AssemblerError):
            with k.if_else(p):
                k.nop()

    def test_loop_break_has_reconv(self):
        k = KernelBuilder("t", nregs=4)
        i = k.mov32i_new(0)
        n = k.mov32i_new(4)
        with k.loop() as lp:
            pr = k.isetp_reg(i, n, CmpOp.GE)
            lp.break_if(pr)
            k.iadd(i, i, imm=1)
        k.exit()
        prog = k.build()
        breaks = [x for x in prog.instructions
                  if x.op is Op.BRA and x.reconv_pc is not None]
        assert len(breaks) == 1
        assert breaks[0].reconv_pc == breaks[0].imm

    def test_branch_targets_validated(self):
        k = KernelBuilder("t", nregs=4)
        lbl = k.label()
        k.bra(lbl)  # infinite loop, but structurally valid
        k.exit()
        prog = k.build()
        assert prog[0].imm == 0

    def test_build_twice_rejected(self):
        k = KernelBuilder("t", nregs=4)
        k.exit()
        k.build()
        with pytest.raises(AssemblerError):
            k.build()

    def test_listing_smoke(self):
        k = KernelBuilder("t", nregs=4)
        k.label("start")
        k.exit()
        assert "start:" in k.build().listing()

    def test_op_class_histogram(self):
        k = KernelBuilder("t", nregs=8)
        k.fadd(0, 1, 2)
        k.iadd(0, 1, 2)
        k.exit()
        h = k.build().op_class_histogram()
        assert h[OpClass.FP32] == 1 and h[OpClass.INT] == 1 and h[OpClass.CTRL] == 1


class TestManual:
    def test_manual_covers_every_opcode(self):
        from repro.isa.manual import isa_manual

        text = isa_manual()
        for op in Op:
            assert f"| {op.name} " in text, op

    def test_docs_file_in_sync(self):
        from pathlib import Path

        from repro.isa.manual import isa_manual

        p = Path(__file__).parent.parent / "docs" / "ISA.md"
        assert p.read_text() == isa_manual()
