"""Tests for the detection/mitigation prototypes (paper §5.3 extension)."""

from __future__ import annotations

import pytest

from repro.errormodels import ErrorDescriptor, ErrorModel
from repro.mitigation import (
    ControlFlowChecker,
    DmrDetector,
    evaluate_detection,
)
from repro.swinjector import NVBitPERfi
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def vecadd():
    return get_workload("vectoradd", scale="tiny")


def _tool(model, **kw):
    base = dict(sm_id=0, subpartition=0, warp_slots=frozenset(),
                thread_mask=0xFFFFFFFF, bit_err_mask=1)
    base.update(kw)
    return NVBitPERfi(ErrorDescriptor(model=model, **base))


class TestControlFlowChecker:
    def test_clean_run_not_flagged(self, vecadd):
        cfc = ControlFlowChecker(vecadd)
        bits, detected = cfc.run(None)
        assert not detected

    def test_wv_detected(self, vecadd):
        # WV flips branch predicates: the branch signature must change
        cfc = ControlFlowChecker(vecadd)
        _, detected = cfc.run(_tool(ErrorModel.WV))
        assert detected

    def test_golden_signature_cached(self, vecadd):
        cfc = ControlFlowChecker(vecadd)
        assert cfc.golden_signature() == cfc.golden_signature()


class TestDmrDetector:
    def test_clean_run_not_flagged(self, vecadd):
        dmr = DmrDetector(vecadd)
        _, detected = dmr.run(None)
        assert not detected

    def test_shared_logic_fault_escapes_dmr(self, vecadd):
        # a fault hitting every warp slot corrupts both replicas
        # identically: plain replication cannot see it (the paper's point)
        tool = _tool(ErrorModel.IIO, bit_err_mask=1 << 2)
        dmr = DmrDetector(vecadd)
        bits, detected = dmr.run(tool)
        assert not detected

    def test_slot_local_fault_caught_by_slot_rotation(self, vecadd):
        # slot-restricted fault: the second replica's warps land on other
        # slots, so the replicas diverge -> detected
        tool = _tool(ErrorModel.IIO, bit_err_mask=1 << 2,
                     warp_slots=frozenset({0}))
        dmr = DmrDetector(vecadd)
        _, detected = dmr.run(tool)
        assert detected


class TestEvaluateDetection:
    def test_cfc_coverage_on_wv(self):
        rep = evaluate_detection(app="vectoradd", detector="cfc",
                                 models=(ErrorModel.WV,), injections=6)
        assert rep.coverage(ErrorModel.WV) > 0.5
        assert rep.false_positives(ErrorModel.WV) == 0

    def test_rows_shape(self):
        rep = evaluate_detection(app="vectoradd", detector="cfc",
                                 models=(ErrorModel.WV, ErrorModel.IAT),
                                 injections=4)
        rows = rep.rows()
        assert {r["model"] for r in rows} == {"WV", "IAT"}

    def test_unknown_detector_rejected(self):
        with pytest.raises(KeyError):
            evaluate_detection(detector="tmr")

    def test_non_injectable_model_rejected(self):
        with pytest.raises(KeyError):
            evaluate_detection(models=(ErrorModel.IVOC,), detector="cfc")
