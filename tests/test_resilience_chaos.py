"""Crash-equivalence tests: kill a live campaign, resume, compare.

These are the proof obligations of the resilience layer, run against
real subprocesses:

* a campaign SIGKILLed mid-run (no cleanup whatsoever) resumes to a
  result identical — record-for-record, modulo scheduling noise — to an
  uninterrupted run, for BOTH the software-level EPR driver and the
  gate-level FAPR driver;
* SIGINT on the campaign CLI exits with code 130, leaves a verifiably
  intact store, and ``resume`` completes it to the uninterrupted result;
* the engine converges on a pool whose workers are being chaos-killed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignStore, EngineConfig, WorkUnit, execute
from repro.campaign.engine import register_runner, shard_of
from repro.errormodels.models import ErrorModel
from repro.resilience import chaos
from repro.resilience.verify import normalize_record, verify_campaign
from repro.swinjector import SwCampaignConfig, run_epr_campaign

REPO_ROOT = Path(__file__).resolve().parents[1]

#: fields whose values legitimately differ between a killed-and-resumed
#: run and an uninterrupted one (scheduling, not science)
_NOISE = ("elapsed", "retries", "obs", "_sum")


@pytest.fixture(autouse=True)
def _chaos_off():
    chaos.deactivate()
    yield
    chaos.deactivate()


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_CHAOS", None)
    return env


def _spawn(code_or_argv, *args) -> subprocess.Popen:
    if isinstance(code_or_argv, str):
        argv = [sys.executable, "-c", code_or_argv, *args]
    else:
        argv = [sys.executable, *code_or_argv, *args]
    return subprocess.Popen(argv, cwd=REPO_ROOT, env=_env(),
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)


def _wait_for_results(directory: Path, n_lines: int, proc: subprocess.Popen,
                      timeout: float = 120.0) -> int:
    """Poll until results.jsonl has *n_lines* (or the process exits)."""
    results = directory / "results.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if results.exists():
            lines = len(results.read_text().splitlines())
            if lines >= n_lines:
                return lines
        if proc.poll() is not None:
            return (len(results.read_text().splitlines())
                    if results.exists() else 0)
        time.sleep(0.05)
    raise AssertionError(f"no progress in {directory} after {timeout}s")


def _normalized(store: CampaignStore) -> dict[str, dict]:
    return {uid: normalize_record(r.to_json(), drop=_NOISE)
            for uid, r in store.load_results().items()}


_EPR_SCRIPT = """
import sys
from repro.campaign import CampaignStore
from repro.errormodels.models import ErrorModel
from repro.swinjector import SwCampaignConfig, run_epr_campaign

cfg = SwCampaignConfig(apps=("vectoradd",),
                       models=(ErrorModel.WV, ErrorModel.IMS),
                       injections_per_model=12, scale="tiny",
                       processes=2, fail_fast=False)
run_epr_campaign(cfg, store=CampaignStore(sys.argv[1]), chunk=1)
"""

_GATE_SCRIPT = """
import sys
from repro.campaign import CampaignStore
from repro.faultinjection import CampaignConfig, run_gate_campaign
from repro.profiling import stimuli_from_program
from repro.workloads import get_workload

w = get_workload("vectoradd", scale="tiny")
stimuli = stimuli_from_program(w.program())
cfg = CampaignConfig(unit="decoder", max_faults=512, max_stimuli=8,
                     words=1, processes=2, fail_fast=False)
run_gate_campaign(cfg, stimuli, store=CampaignStore(sys.argv[1]))
"""


class TestKillMinusNineAndResume:
    def _kill_mid_run(self, script: str, directory: Path,
                      after_lines: int = 2) -> None:
        proc = _spawn(script, str(directory))
        try:
            _wait_for_results(directory, after_lines, proc)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_epr_campaign_survives_sigkill(self, tmp_path):
        killed_dir = tmp_path / "killed"
        self._kill_mid_run(_EPR_SCRIPT, killed_dir)
        store = CampaignStore(killed_dir)
        done_before = len(store.completed_ids())
        assert store.manifest_path.exists()

        cfg = SwCampaignConfig(apps=("vectoradd",),
                               models=(ErrorModel.WV, ErrorModel.IMS),
                               injections_per_model=12, scale="tiny",
                               processes=1, fail_fast=False)
        resumed = run_epr_campaign(cfg, store=store, chunk=1)
        assert len(store.completed_ids()) == 24
        assert len(store.completed_ids()) >= done_before

        fresh_store = CampaignStore(tmp_path / "fresh")
        fresh = run_epr_campaign(cfg, store=fresh_store, chunk=1)

        # aggregate equivalence ...
        for model in cfg.models:
            assert resumed.counts("vectoradd", model) == \
                fresh.counts("vectoradd", model)
        assert resumed.overall_epr() == fresh.overall_epr()
        # ... and record-level equivalence, modulo scheduling noise
        assert _normalized(store) == _normalized(fresh_store)

    def test_gate_campaign_survives_sigkill(self, tmp_path):
        from repro.faultinjection import CampaignConfig, run_gate_campaign
        from repro.profiling import stimuli_from_program
        from repro.workloads import get_workload

        killed_dir = tmp_path / "killed"
        self._kill_mid_run(_GATE_SCRIPT, killed_dir)
        store = CampaignStore(killed_dir)
        assert store.manifest_path.exists()

        w = get_workload("vectoradd", scale="tiny")
        stimuli = stimuli_from_program(w.program())
        cfg = CampaignConfig(unit="decoder", max_faults=512, max_stimuli=8,
                             words=1, processes=1, fail_fast=False)
        resumed = run_gate_campaign(cfg, stimuli, store=store)

        fresh_store = CampaignStore(tmp_path / "fresh")
        fresh = run_gate_campaign(cfg, stimuli, store=fresh_store)

        assert resumed.category_counts() == fresh.category_counts()
        assert resumed.faults_per_error() == fresh.faults_per_error()
        assert _normalized(store) == _normalized(fresh_store)


class TestSigintCli:
    def test_sigint_checkpoints_and_resumes(self, tmp_path):
        d = tmp_path / "cli"
        # 40 serial one-injection units: wide window between the first
        # committed result and campaign completion for the SIGINT to land
        # --no-accel: the interrupt window assumes cold per-injection
        # replays; the accelerated path finishes tiny units too fast for
        # the SIGINT to reliably land mid-campaign
        proc = _spawn(["-m", "repro.campaign"],
                      "run", "--scale", "tiny", "--apps", "vectoradd",
                      "--models", "WV,IMS", "--injections", "20",
                      "--chunk", "1", "--serial", "--no-accel",
                      "--dir", str(d))
        try:
            _wait_for_results(d, 1, proc)
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        store = CampaignStore(d)
        done_before = len(store.completed_ids())
        # rc 130 == the guard caught the signal mid-run and checkpointed.
        # On a loaded machine the signal can instead land after the last
        # unit committed (guard already uninstalled) — then the store
        # must be COMPLETE; any other death is a guard failure.
        interrupted = proc.returncode == 130
        if interrupted:
            assert "interrupted" in err and "resume" in err, (out, err)
            assert 0 < done_before < 40
        else:
            assert done_before == 40, (proc.returncode, out, err)
        # cooperative stop: the store is whole, not merely repairable
        report = verify_campaign(d)
        assert report.ok, report.render()

        from repro.campaign.__main__ import main

        assert main(["resume", "--dir", str(d), "--serial"]) == 0
        assert store.status()["complete"]
        assert len(store.completed_ids()) == 40

        cfg = SwCampaignConfig(apps=("vectoradd",),
                               models=(ErrorModel.WV, ErrorModel.IMS),
                               injections_per_model=20, scale="tiny",
                               processes=1, fail_fast=False, accel=False)
        fresh_store = CampaignStore(tmp_path / "fresh")
        run_epr_campaign(cfg, store=fresh_store, chunk=1)
        assert _normalized(store) == _normalized(fresh_store)


# ---------------------------------------------------------------------
# in-process chaos: pool convergence under worker kills
# ---------------------------------------------------------------------

@register_runner("test-chaos-echo")
def _chaos_echo(payload: dict) -> dict:
    return {"items": 1, "value": payload["x"]}


def _kill_rolls(seed: float, uids: list[str], p: float):
    state = chaos.ChaosState({"kill": p}, seed=seed)
    return {(uid, attempt): chaos._roll(state, "kill", uid, attempt)
            for uid in uids for attempt in (0, 1)}


class TestPoolChaosConvergence:
    def test_killed_workers_retry_and_converge(self, tmp_path):
        uids = [f"test-chaos-echo/{i:03d}" for i in range(6)]
        # deterministically pick a seed where exactly one unit dies on
        # attempt 0 and every attempt-1 roll is clean (bounds test time
        # to a single unit-timeout wait)
        seed = next(
            s for s in range(500)
            if sum(_kill_rolls(s, uids, 0.25)[(u, 0)] for u in uids) == 1
            and not any(_kill_rolls(s, uids, 0.25)[(u, 1)] for u in uids))
        units = [WorkUnit(unit_id=uid, kind="test-chaos-echo",
                          payload={"x": i}, shard=shard_of(uid))
                 for i, uid in enumerate(uids)]
        store = CampaignStore(tmp_path / "campaign")
        store.write_manifest("test-chaos-echo", {}, total_units=len(units))

        chaos.configure({"kill": 0.25}, seed=seed)
        try:
            results = execute(units, EngineConfig(
                processes=2, timeout=5.0, retries=2, backoff=0.0,
                handle_signals=False), store=store)
        finally:
            chaos.deactivate()

        assert len(results) == 6
        assert all(r.ok for r in results.values())
        killed = [r for r in results.values() if r.retries > 0]
        assert killed, "the chaos kill never fired"
        assert store.status()["complete"]

    def test_torn_appends_rewind_only_the_torn_units(self, tmp_path):
        units = [WorkUnit(unit_id=f"test-chaos-echo/{i:03d}",
                          kind="test-chaos-echo", payload={"x": i},
                          shard=shard_of(str(i))) for i in range(8)]
        store = CampaignStore(tmp_path / "campaign")
        store.write_manifest("test-chaos-echo", {}, total_units=len(units))

        chaos.configure({"torn": 0.4}, seed=9)
        try:
            execute(units, EngineConfig(processes=1, handle_signals=False),
                    store=store)
            fired = chaos.ACTIVE.fired["torn"]
        finally:
            chaos.deactivate()
        assert fired, "no torn write fired; seed is vacuous"

        # every torn record is dropped, every intact one kept
        completed = store.completed_ids()
        assert len(completed) == 8 - fired
        assert len(store.last_scan.issues) == fired

        # clean resume re-runs exactly the torn units
        resumed = execute(units, EngineConfig(processes=1,
                                              handle_signals=False),
                          store=store)
        assert len(resumed) == fired
        assert len(store.completed_ids()) == 8
        assert json.loads(
            store.results_path.read_text().splitlines()[-1])["ok"]
