"""Behavioural tests of the functional GPU simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.bitops import float_to_bits
from repro.common.exceptions import (
    ConfigError,
    MemoryFaultError,
    WatchdogTimeoutError,
)
from repro.gpusim import Device, DeviceConfig
from repro.isa import CmpOp, KernelBuilder, Op, RZ, SpecialReg


def _global_tid(k: KernelBuilder) -> int:
    """tid.x + ctaid.x * ntid.x"""
    tid = k.s2r_tid_x()
    cta = k.s2r_ctaid_x()
    ntid = k.s2r_ntid_x()
    g = k.reg()
    k.imad(g, cta, ntid, tid)
    return g


def build_vecadd(n_name: str = "vecadd") -> object:
    k = KernelBuilder(n_name, nregs=24)
    g = _global_tid(k)
    n = k.load_param(0)
    a_ptr = k.load_param(1)
    b_ptr = k.load_param(2)
    c_ptr = k.load_param(3)
    p = k.isetp_reg(g, n, CmpOp.GE)
    with k.if_(p):
        k.exit()
    off = k.reg()
    k.shl(off, g, imm=2)
    aa = k.reg()
    k.iadd(aa, a_ptr, off)
    bb = k.reg()
    k.iadd(bb, b_ptr, off)
    cc = k.reg()
    k.iadd(cc, c_ptr, off)
    va = k.reg()
    k.gld(va, aa)
    vb = k.reg()
    k.gld(vb, bb)
    vc = k.reg()
    k.fadd(vc, va, vb)
    k.gst(cc, vc)
    k.exit()
    return k.build()


class TestVecAdd:
    def test_fp_vector_add(self, device, rng):
        n = 100
        a = rng.normal(size=n).astype(np.float32)
        b = rng.normal(size=n).astype(np.float32)
        pa, pb = device.alloc_array(a), device.alloc_array(b)
        pc = device.alloc(n)
        prog = build_vecadd()
        res = device.launch(prog, grid=2, block=64, params=[n, pa, pb, pc])
        got = device.read(pc, n, np.float32)
        np.testing.assert_array_equal(got, a + b)
        assert res.num_ctas == 2
        assert res.instructions_executed > 0

    def test_partial_warp_tail(self, device, rng):
        # n smaller than block: the guard must deactivate tail threads
        n = 5
        a = np.arange(n, dtype=np.float32)
        b = np.ones(n, dtype=np.float32)
        pa, pb = device.alloc_array(a), device.alloc_array(b)
        pc = device.alloc(n)
        device.launch(build_vecadd(), grid=1, block=64, params=[n, pa, pb, pc])
        np.testing.assert_array_equal(device.read(pc, n, np.float32), a + b)


class TestIntegerSemantics:
    def _run_binary(self, device, op_emit, a_vals, b_vals):
        n = len(a_vals)
        a = np.asarray(a_vals, dtype=np.uint32)
        b = np.asarray(b_vals, dtype=np.uint32)
        pa, pb = device.alloc_array(a), device.alloc_array(b)
        pc = device.alloc(n)
        k = KernelBuilder("bin", nregs=24)
        g = _global_tid(k)
        off = k.reg()
        k.shl(off, g, imm=2)
        ra = k.reg(); k.iadd(ra, k.load_param(0), off)
        rb = k.reg(); k.iadd(rb, k.load_param(1), off)
        rc = k.reg(); k.iadd(rc, k.load_param(2), off)
        va = k.reg(); k.gld(va, ra)
        vb = k.reg(); k.gld(vb, rb)
        vc = k.reg()
        op_emit(k, vc, va, vb)
        k.gst(rc, vc)
        k.exit()
        device.launch(k.build(), grid=1, block=n, params=[pa, pb, pc])
        return device.read(pc, n)

    def test_iadd_wraps(self, device):
        got = self._run_binary(device, lambda k, d, a, b: k.iadd(d, a, b),
                               [0xFFFFFFFF, 7], [1, 3])
        np.testing.assert_array_equal(got, [0, 10])

    def test_isub(self, device):
        got = self._run_binary(device, lambda k, d, a, b: k.isub(d, a, b),
                               [5, 0], [7, 1])
        np.testing.assert_array_equal(got, np.array([-2, -1], np.int32).view(np.uint32))

    def test_imul_low32(self, device):
        got = self._run_binary(device, lambda k, d, a, b: k.imul(d, a, b),
                               [0x10000, 3], [0x10000, 4])
        np.testing.assert_array_equal(got, [0, 12])

    def test_logic_ops(self, device):
        got = self._run_binary(device, lambda k, d, a, b: k.and_(d, a, b),
                               [0xF0F0], [0xFF00])
        assert got[0] == 0xF000
        got = self._run_binary(device, lambda k, d, a, b: k.xor(d, a, b),
                               [0xFF], [0x0F])
        assert got[0] == 0xF0

    def test_shifts(self, device):
        got = self._run_binary(device, lambda k, d, a, b: k.shl(d, a, b),
                               [1, 1], [4, 33])  # shift amounts masked &31
        np.testing.assert_array_equal(got, [16, 2])
        got = self._run_binary(device, lambda k, d, a, b: k.shr(d, a, b),
                               [0x80000000], [31])
        assert got[0] == 1

    def test_imnmx(self, device):
        got = self._run_binary(
            device,
            lambda k, d, a, b: k.imnmx(d, a, b, mode=CmpOp.MAX),
            np.array([-5], np.int32).view(np.uint32), [3])
        assert got.view(np.int32)[0] == 3


class TestFloatSemantics:
    def test_ffma(self, device):
        n = 32
        a = np.full(n, 1.5, np.float32)
        b = np.full(n, 2.0, np.float32)
        pa, pb = device.alloc_array(a), device.alloc_array(b)
        pc = device.alloc(n)
        k = KernelBuilder("ffma", nregs=24)
        g = _global_tid(k)
        off = k.reg(); k.shl(off, g, imm=2)
        ra = k.reg(); k.iadd(ra, k.load_param(0), off)
        rb = k.reg(); k.iadd(rb, k.load_param(1), off)
        rc = k.reg(); k.iadd(rc, k.load_param(2), off)
        va = k.reg(); k.gld(va, ra)
        vb = k.reg(); k.gld(vb, rb)
        one = k.movf_new(1.0)
        vc = k.reg()
        k.ffma(vc, va, vb, one)
        k.gst(rc, vc)
        k.exit()
        device.launch(k.build(), grid=1, block=n, params=[pa, pb, pc])
        np.testing.assert_allclose(device.read(pc, n, np.float32), 4.0)

    def test_sfu_ops(self, device):
        x = np.linspace(0.1, 1.4, 32).astype(np.float32)
        px = device.alloc_array(x)
        pouts = [device.alloc(32) for _ in range(3)]
        k = KernelBuilder("sfu", nregs=24)
        g = _global_tid(k)
        off = k.reg(); k.shl(off, g, imm=2)
        rx = k.reg(); k.iadd(rx, k.load_param(0), off)
        vx = k.reg(); k.gld(vx, rx)
        for slot, emit in enumerate(("fsin", "fexp", "fsqrt")):
            ro = k.reg(); k.iadd(ro, k.load_param(1 + slot), off)
            vo = k.reg()
            getattr(k, emit)(vo, vx)
            k.gst(ro, vo)
        k.exit()
        device.launch(k.build(), grid=1, block=32, params=[px, *pouts])
        np.testing.assert_allclose(device.read(pouts[0], 32, np.float32),
                                   np.sin(x), rtol=1e-6)
        np.testing.assert_allclose(device.read(pouts[1], 32, np.float32),
                                   np.exp(x), rtol=1e-6)
        np.testing.assert_allclose(device.read(pouts[2], 32, np.float32),
                                   np.sqrt(x), rtol=1e-6)

    def test_i2f_f2i(self, device):
        n = 4
        vals = np.array([-7, 0, 3, 100], np.int32)
        pin = device.alloc_array(vals.view(np.uint32))
        pout = device.alloc(n)
        k = KernelBuilder("cvt", nregs=16)
        g = _global_tid(k)
        off = k.reg(); k.shl(off, g, imm=2)
        ri = k.reg(); k.iadd(ri, k.load_param(0), off)
        ro = k.reg(); k.iadd(ro, k.load_param(1), off)
        v = k.reg(); k.gld(v, ri)
        f = k.reg(); k.i2f(f, v)
        h = k.movf_new(0.5)
        k.fmul(f, f, h)     # v * 0.5
        b = k.reg(); k.f2i(b, f)
        k.gst(ro, b)
        k.exit()
        device.launch(k.build(), grid=1, block=n, params=[pin, pout])
        got = device.read(pout, n, np.int32)
        np.testing.assert_array_equal(got, np.trunc(vals * 0.5).astype(np.int32))


class TestControlFlow:
    def test_divergent_if_else(self, device):
        # even lanes write 1, odd lanes write 2
        n = 64
        pout = device.alloc(n)
        k = KernelBuilder("div", nregs=16)
        g = _global_tid(k)
        off = k.reg(); k.shl(off, g, imm=2)
        ro = k.reg(); k.iadd(ro, k.load_param(0), off)
        lsb = k.reg(); k.and_(lsb, g, imm=1)
        p = k.isetp_reg(lsb, RZ, CmpOp.EQ)
        v = k.reg()
        with k.if_else(p) as orelse:
            k.mov32i(v, 1)
            orelse()
            k.mov32i(v, 2)
        k.gst(ro, v)
        k.exit()
        device.launch(k.build(), grid=1, block=n, params=[pout])
        got = device.read(pout, n)
        expected = np.where(np.arange(n) % 2 == 0, 1, 2)
        np.testing.assert_array_equal(got, expected)

    def test_thread_dependent_loop_trip_counts(self, device):
        # thread t sums 0..t-1 via a divergent loop
        n = 64
        pout = device.alloc(n)
        k = KernelBuilder("tloop", nregs=24)
        g = _global_tid(k)
        off = k.reg(); k.shl(off, g, imm=2)
        ro = k.reg(); k.iadd(ro, k.load_param(0), off)
        acc = k.mov32i_new(0)
        i = k.reg()
        with k.for_range(i, 0, g):
            k.iadd(acc, acc, i)
        k.gst(ro, acc)
        k.exit()
        device.launch(k.build(), grid=1, block=n, params=[pout])
        got = device.read(pout, n)
        expected = np.array([t * (t - 1) // 2 for t in range(n)])
        np.testing.assert_array_equal(got, expected)

    def test_nested_divergence(self, device):
        n = 32
        pout = device.alloc(n)
        k = KernelBuilder("nest", nregs=24)
        g = _global_tid(k)
        off = k.reg(); k.shl(off, g, imm=2)
        ro = k.reg(); k.iadd(ro, k.load_param(0), off)
        v = k.mov32i_new(0)
        b0 = k.reg(); k.and_(b0, g, imm=1)
        b1 = k.reg(); k.and_(b1, g, imm=2)
        p0 = k.isetp_reg(b0, RZ, CmpOp.NE)
        p1 = k.isetp_reg(b1, RZ, CmpOp.NE)
        with k.if_(p0):
            k.iadd(v, v, imm=1)
            with k.if_(p1):
                k.iadd(v, v, imm=10)
        k.gst(ro, v)
        k.exit()
        device.launch(k.build(), grid=1, block=n, params=[pout])
        got = device.read(pout, n)
        t = np.arange(n)
        expected = np.where(t & 1, np.where(t & 2, 11, 1), 0)
        np.testing.assert_array_equal(got, expected)

    def test_exit_inside_divergence(self, device):
        n = 32
        pout = device.alloc(n)
        device.write(pout, np.full(n, 99, np.uint32))
        k = KernelBuilder("exitdiv", nregs=16)
        g = _global_tid(k)
        off = k.reg(); k.shl(off, g, imm=2)
        ro = k.reg(); k.iadd(ro, k.load_param(0), off)
        p = k.pred()
        k.isetp(p, g, imm=16, cmp=CmpOp.GE)
        with k.if_(p):
            k.exit()
        k.gst(ro, g)
        k.exit()
        device.launch(k.build(), grid=1, block=n, params=[pout])
        got = device.read(pout, n)
        np.testing.assert_array_equal(got[:16], np.arange(16))
        np.testing.assert_array_equal(got[16:], 99)


class TestSharedMemoryAndBarrier:
    def test_block_reverse_via_shared(self, device):
        n = 64
        data = np.arange(n, dtype=np.uint32)
        pin = device.alloc_array(data)
        pout = device.alloc(n)
        k = KernelBuilder("rev", nregs=24, shared_words=n)
        tid = k.s2r_tid_x()
        off = k.reg(); k.shl(off, tid, imm=2)
        ri = k.reg(); k.iadd(ri, k.load_param(0), off)
        v = k.reg(); k.gld(v, ri)
        k.sts(off, v)
        k.bar()
        # read shared[n-1-tid]
        rt = k.mov32i_new(n - 1)
        k.isub(rt, rt, tid)
        k.shl(rt, rt, imm=2)
        w = k.reg(); k.lds(w, rt)
        ro = k.reg(); k.iadd(ro, k.load_param(1), off)
        k.gst(ro, w)
        k.exit()
        device.launch(k.build(), grid=1, block=n, params=[pin, pout])
        np.testing.assert_array_equal(device.read(pout, n), data[::-1])

    def test_barrier_multiple_warps(self, device):
        # warp 1 writes, warp 0 reads after barrier
        pout = device.alloc(32)
        k = KernelBuilder("xwarp", nregs=24, shared_words=64)
        tid = k.s2r_tid_x()
        off = k.reg(); k.shl(off, tid, imm=2)
        v = k.reg(); k.iadd(v, tid, imm=1000)
        k.sts(off, v)
        k.bar()
        # thread t of warp 0 reads shared[t+32]
        p = k.pred()
        k.isetp(p, tid, imm=32, cmp=CmpOp.GE)
        with k.if_(p):
            k.exit()
        partner = k.reg(); k.iadd(partner, tid, imm=32)
        k.shl(partner, partner, imm=2)
        w = k.reg(); k.lds(w, partner)
        ro = k.reg(); k.iadd(ro, k.load_param(0), off)
        k.gst(ro, w)
        k.exit()
        device.launch(k.build(), grid=1, block=64, params=[pout])
        np.testing.assert_array_equal(device.read(pout, 32),
                                      np.arange(32) + 32 + 1000)


class TestFaults:
    def test_oob_global_access_faults(self, device):
        k = KernelBuilder("oob", nregs=8)
        bad = k.mov32i_new(0x7FFFFFFC)
        v = k.reg()
        k.gld(v, bad)
        k.exit()
        with pytest.raises(MemoryFaultError):
            device.launch(k.build(), grid=1, block=1)

    def test_misaligned_access_faults(self, device):
        k = KernelBuilder("mis", nregs=8)
        bad = k.mov32i_new(2)
        v = k.reg()
        k.gld(v, bad)
        k.exit()
        with pytest.raises(MemoryFaultError):
            device.launch(k.build(), grid=1, block=1)

    def test_watchdog_catches_infinite_loop(self, device):
        k = KernelBuilder("hang", nregs=8)
        lbl = k.label()
        k.bra(lbl)
        k.exit()
        with pytest.raises(WatchdogTimeoutError):
            device.launch(k.build(), grid=1, block=1, watchdog=10_000)

    def test_block_too_large(self, device):
        k = KernelBuilder("big", nregs=8)
        k.exit()
        with pytest.raises(ConfigError):
            device.launch(k.build(), grid=1, block=2048)


class TestDeviceMemoryApi:
    def test_alloc_is_word_aligned(self, device):
        a = device.alloc(10)
        b = device.alloc(10)
        assert a % 4 == 0 and b % 4 == 0 and b > a

    def test_write_read_float32(self, device):
        arr = np.array([1.5, -2.25], np.float32)
        p = device.alloc_array(arr)
        np.testing.assert_array_equal(device.read(p, 2, np.float32), arr)

    def test_params_floats_encoded(self, device):
        device.set_params([3, 2.5])
        words = device.constant_mem.read_words(0, 2)
        assert words[0] == 3
        assert words[1] == float_to_bits(2.5)


class TestWarpCoordinates:
    def test_subpartition_assignment(self, device):
        seen = []

        def trace(ev):
            seen.append((ev.sm_id, ev.subpartition, ev.warp_slot, ev.warp_in_cta))

        k = KernelBuilder("coord", nregs=4)
        k.exit()
        device.launch(k.build(), grid=2, block=256, trace_fn=trace)
        # 8 warps/CTA over 4 subpartitions: warp w -> subpartition w%4
        per_cta = {(w % 4) for _, _, _, w in seen}
        assert per_cta == {0, 1, 2, 3}
        # two CTAs on different SMs
        assert {s for s, _, _, _ in seen} == {0, 1}
