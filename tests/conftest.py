"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import Device, DeviceConfig


@pytest.fixture
def device() -> Device:
    """A small default device, fresh per test."""
    return Device(DeviceConfig(global_mem_words=1 << 18))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
