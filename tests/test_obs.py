"""Tests for the unified observability layer (repro.obs).

Covers the guarantees the instrumented campaigns rely on:

* span nesting and parent ids, and capture/absorb merging across
  process boundaries (fork-pool workers);
* histogram bucket math and lossless snapshot diff/merge;
* chrome-trace export schema validity (Perfetto-loadable);
* no-op mode: with observability disabled, campaign results are
  byte-identical to a repo without the instrumentation (no ``obs`` key
  in ``results.jsonl``, no sink files created);
* the structured logger's text/json/quiet modes.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.campaign import CampaignStore
from repro.errormodels.models import ErrorModel
from repro.obs import log, metrics, sinks
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    labelkey,
    parse_labelkey,
)
from repro.obs.trace import NULL_SPAN, Recorder
from repro.swinjector import SwCampaignConfig, run_epr_campaign


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Every test starts and ends with a clean, disabled obs state."""
    obs.reset()
    yield
    obs.reset()


def _enabled():
    obs.enable()
    return obs.RECORDER


# ---------------------------------------------------------------------
# tracing spans
# ---------------------------------------------------------------------

class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything", key="value") is NULL_SPAN
        with obs.span("still.noop"):
            pass
        assert obs.RECORDER.records() == []

    def test_span_records_on_exit(self):
        _enabled()
        with obs.span("outer", app="gemm"):
            pass
        (rec,) = obs.RECORDER.records()
        assert rec["name"] == "outer"
        assert rec["type"] == "span"
        assert rec["attrs"] == {"app": "gemm"}
        assert rec["dur"] >= 0
        assert rec["parent"] is None

    def test_nesting_sets_parent_ids(self):
        _enabled()
        with obs.span("outer") as outer:
            with obs.span("middle") as middle:
                with obs.span("inner"):
                    pass
        by_name = {r["name"]: r for r in obs.RECORDER.records()}
        assert by_name["inner"]["parent"] == middle.span_id
        assert by_name["middle"]["parent"] == outer.span_id
        assert by_name["outer"]["parent"] is None

    def test_exception_is_recorded_and_propagates(self):
        _enabled()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("expected")
        (rec,) = obs.RECORDER.records()
        assert rec["error"] == "ValueError"

    def test_event_attaches_to_current_span(self):
        _enabled()
        with obs.span("parent") as parent:
            obs.event("unit.retry", unit="epr/x/1")
        events = [r for r in obs.RECORDER.records() if r["type"] == "event"]
        (ev,) = events
        assert ev["parent"] == parent.span_id
        assert ev["attrs"] == {"unit": "epr/x/1"}

    def test_span_feeds_span_seconds_histogram(self):
        _enabled()
        with obs.span("timed"):
            pass
        series = metrics.SPAN_SECONDS.series(name="timed")
        assert series is not None and series["count"] == 1


class TestRecorder:
    def test_ring_drops_oldest(self):
        rec = Recorder(capacity=3)
        for i in range(5):
            rec.add({"i": i})
        assert [r["i"] for r in rec.records()] == [2, 3, 4]
        assert rec.dropped == 2
        assert rec.appended == 5

    def test_mark_since_window(self):
        rec = Recorder(capacity=10)
        rec.add({"i": 0})
        mark = rec.mark()
        rec.add({"i": 1})
        rec.add({"i": 2})
        assert [r["i"] for r in rec.since(mark)] == [1, 2]
        assert rec.since(rec.mark()) == []

    def test_drain_empties_buffer(self):
        rec = Recorder(capacity=10)
        rec.add({"i": 0})
        assert len(rec.drain()) == 1
        assert rec.records() == []

    def test_span_ids_embed_pid(self):
        import os

        rec = Recorder()
        assert rec.next_id().startswith(f"{os.getpid():x}.")


# ---------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------

class TestMetrics:
    def test_labelkey_roundtrip(self):
        labels = {"model": "WV", "app": "gemm"}
        key = labelkey(labels)
        assert key == "app=gemm,model=WV"  # sorted keys
        assert parse_labelkey(key) == labels
        assert parse_labelkey("") == {}

    def test_counter_disabled_is_noop(self):
        c = Counter("x")
        c.inc(5, model="WV")
        assert c.total() == 0

    def test_counter_labels_and_total(self):
        _enabled()
        c = Counter("injections")
        c.inc(model="WV", outcome="sdc")
        c.inc(2, model="WV", outcome="masked")
        c.inc(model="IIO", outcome="sdc")
        assert c.value(model="WV", outcome="sdc") == 1
        assert c.value(model="WV", outcome="masked") == 2
        assert c.total() == 4

    def test_histogram_bucket_placement(self):
        _enabled()
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 99.0):
            h.observe(v)
        s = h.series()
        # bisect_left: boundary values land in their own bucket
        assert s["counts"] == [2, 1, 1, 1]
        assert s["count"] == 5
        assert s["sum"] == pytest.approx(106.0)

    def test_snapshot_diff_is_a_delta(self):
        _enabled()
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc(3, k="a")
        before = reg.snapshot()
        c.inc(2, k="a")
        c.inc(1, k="b")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        delta = metrics.diff(before, reg.snapshot())
        assert delta["counters"]["n"] == {"k=a": 2, "k=b": 1}
        assert delta["histograms"]["h"]["series"][""]["count"] == 1

    def test_merge_folds_worker_delta(self):
        _enabled()
        reg = MetricsRegistry()
        reg.counter("n").inc(3, k="a")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        reg2 = MetricsRegistry()
        reg2.counter("n").inc(1, k="a")
        reg2.merge(snap)
        assert reg2.counter("n").value(k="a") == 4
        assert reg2.histogram("h").series()["count"] == 1

    def test_merge_snapshots_is_cumulative(self):
        _enabled()
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        a = reg.snapshot()
        merged = metrics.merge_snapshots(a, a)
        assert merged["counters"]["n"][""] == 4

    def test_registry_reset_keeps_handles_valid(self):
        _enabled()
        c = obs.REGISTRY.counter("keepme")
        c.inc(7)
        obs.REGISTRY.reset()
        assert c.total() == 0
        c.inc(1)
        assert obs.REGISTRY.counter("keepme").total() == 1


# ---------------------------------------------------------------------
# capture / absorb (cross-process merge protocol)
# ---------------------------------------------------------------------

class TestCaptureAbsorb:
    def test_capture_window_collects_spans_and_metrics(self):
        _enabled()
        token = obs.capture_begin()
        with obs.span("unit.work"):
            obs.REGISTRY.counter("worked").inc(3)
        payload = obs.capture_end(token)
        assert [r["name"] for r in payload["spans"]] == ["unit.work"]
        assert payload["metrics"]["counters"]["worked"][""] == 3

    def test_same_pid_payload_is_skipped(self):
        """Serial execution: the payload is already local state."""
        _enabled()
        token = obs.capture_begin()
        obs.REGISTRY.counter("serial").inc(1)
        payload = obs.capture_end(token)
        obs.absorb(payload)  # same pid -> must not double count
        assert obs.REGISTRY.counter("serial").total() == 1

    def test_foreign_pid_payload_merges(self):
        _enabled()
        payload = {
            "pid": -1,  # never a real pid
            "spans": [{"type": "span", "name": "w", "ts": 0.0, "dur": 0.1,
                       "pid": -1, "tid": 1, "id": "-1.1", "parent": None}],
            "metrics": {"counters": {"foreign": {"": 5}}},
        }
        obs.absorb(payload)
        assert obs.REGISTRY.counter("foreign").total() == 5
        assert any(r["name"] == "w" for r in obs.RECORDER.records())

    def test_disabled_capture_is_none(self):
        assert obs.capture_begin() is None
        assert obs.capture_end(None) is None
        obs.absorb(None)  # must not raise


# ---------------------------------------------------------------------
# event bus
# ---------------------------------------------------------------------

class TestEventBus:
    def test_emit_reaches_subscriber(self):
        bus = obs.EventBus()
        seen = []
        token = bus.subscribe("t", seen.append)
        bus.emit("t", 1)
        bus.unsubscribe(token)
        bus.emit("t", 2)
        assert seen == [1]

    def test_subscribed_scopes_to_block(self):
        bus = obs.EventBus()
        seen = []
        with bus.subscribed(("a", seen.append), ("b", seen.append)):
            bus.emit("a", "x")
            bus.emit("b", "y")
        bus.emit("a", "z")
        assert seen == ["x", "y"]


# ---------------------------------------------------------------------
# sinks + chrome trace
# ---------------------------------------------------------------------

class TestSinks:
    def test_flush_writes_and_drains(self, tmp_path):
        _enabled()
        with obs.span("s"):
            obs.REGISTRY.counter("c").inc(2)
        paths = obs.flush(tmp_path)
        assert (tmp_path / sinks.EVENTS_NAME).exists()
        assert (tmp_path / sinks.METRICS_NAME).exists()
        assert paths["events"].endswith(sinks.EVENTS_NAME)
        # drained: a second flush appends nothing new
        n = len(sinks.read_events(tmp_path))
        obs.flush(tmp_path)
        assert len(sinks.read_events(tmp_path)) == n

    def test_flush_merges_metrics_across_runs(self, tmp_path):
        _enabled()
        obs.REGISTRY.counter("c").inc(2)
        obs.flush(tmp_path)
        obs.REGISTRY.counter("c").inc(3)
        obs.flush(tmp_path)
        data = sinks.read_metrics(tmp_path)
        assert data["counters"]["c"][""] == 5

    def test_chrome_trace_schema(self, tmp_path):
        _enabled()
        with obs.span("outer", app="gemm"):
            with obs.span("inner"):
                pass
            obs.event("marker", note="hi")
        obs.flush(tmp_path)
        trace_path = sinks.export_trace(tmp_path)
        assert sinks.validate_chrome_trace(trace_path) == []
        data = json.loads(trace_path.read_text())
        events = data["traceEvents"]
        assert all({"ph", "ts", "pid"} <= set(ev) for ev in events)
        complete = [ev for ev in events if ev["ph"] == "X"]
        assert {ev["name"] for ev in complete} == {"outer", "inner"}
        assert all("dur" in ev for ev in complete)
        assert any(ev["ph"] == "i" and ev["name"] == "marker"
                   for ev in events)
        assert any(ev["ph"] == "M" for ev in events)

    def test_validate_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all {")
        assert sinks.validate_chrome_trace(bad)
        bad.write_text(json.dumps({"traceEvents": [{"name": "x"}]}))
        assert sinks.validate_chrome_trace(bad)


# ---------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------

_CFG = dict(apps=("vectoradd",), models=(ErrorModel.WV, ErrorModel.IIO),
            injections_per_model=4, scale="tiny", seed=11)


class TestCampaignIntegration:
    def test_injections_total_matches_campaign_items(self, tmp_path):
        _enabled()
        store = CampaignStore(tmp_path / "traced")
        res = run_epr_campaign(SwCampaignConfig(**_CFG, processes=1),
                               store=store, chunk=2)
        expected = len(_CFG["apps"]) * len(_CFG["models"]) * 4
        assert len(res.outcomes) == expected
        data = sinks.read_metrics(store.directory)
        total = sum(data["counters"]["injections_total"].values())
        assert total == expected
        # label schema: {model, workload, outcome}
        for key in data["counters"]["injections_total"]:
            assert set(parse_labelkey(key)) == {"model", "workload",
                                                "outcome"}

    def test_traced_campaign_spans_cover_all_layers(self, tmp_path):
        _enabled()
        store = CampaignStore(tmp_path / "traced")
        run_epr_campaign(SwCampaignConfig(**_CFG, processes=1),
                         store=store, chunk=2)
        names = {r["name"] for r in sinks.read_events(store.directory)}
        assert {"engine.wave", "engine.unit", "epr.unit", "epr.inject",
                "gpusim.launch"} <= names
        trace_path = sinks.export_trace(store.directory)
        assert sinks.validate_chrome_trace(trace_path) == []

    def test_pool_workers_merge_into_parent(self, tmp_path):
        """Fork workers' spans/metrics surface in the parent's sinks."""
        _enabled()
        store = CampaignStore(tmp_path / "pooled")
        res = run_epr_campaign(SwCampaignConfig(**_CFG, processes=2),
                               store=store, chunk=2)
        expected = len(_CFG["apps"]) * len(_CFG["models"]) * 4
        assert len(res.outcomes) == expected
        data = sinks.read_metrics(store.directory)
        assert sum(data["counters"]["injections_total"].values()) == expected
        assert any(r["name"] == "epr.inject"
                   for r in sinks.read_events(store.directory))

    def test_disabled_mode_results_are_byte_identical(self, tmp_path):
        """With obs off, results.jsonl must carry no observability state
        and no sink files may appear (pre-instrumentation layout)."""
        assert not obs.enabled()
        store = CampaignStore(tmp_path / "plain")
        run_epr_campaign(SwCampaignConfig(**_CFG, processes=1),
                         store=store, chunk=2)
        lines = [json.loads(line) for line in
                 store.results_path.read_text().splitlines() if line]
        assert lines
        for doc in lines:
            assert "obs" not in doc
        assert not (store.directory / sinks.EVENTS_NAME).exists()
        assert not (store.directory / sinks.METRICS_NAME).exists()

    def test_disabled_vs_enabled_same_outcomes(self, tmp_path):
        cfg = SwCampaignConfig(**_CFG, processes=1)
        plain = run_epr_campaign(cfg, chunk=2)
        _enabled()
        traced = run_epr_campaign(cfg, chunk=2)
        assert [o.outcome for o in plain.outcomes] == \
            [o.outcome for o in traced.outcomes]


# ---------------------------------------------------------------------
# structured logger
# ---------------------------------------------------------------------

@pytest.fixture()
def _fresh_log():
    yield
    log.configure("text", force=True)


class TestLog:
    def test_text_mode_renders_fields(self, capsys, _fresh_log):
        log.configure("text", force=True)
        log.info("campaign done", items=42)
        out = capsys.readouterr().out
        assert "campaign done" in out
        assert "items=42" in out

    def test_json_mode_emits_json_lines(self, capsys, _fresh_log):
        log.configure("json", force=True)
        log.info("campaign done", items=42)
        doc = json.loads(capsys.readouterr().out.strip())
        assert doc["msg"] == "campaign done"
        assert doc["items"] == 42
        assert doc["level"] == "info"

    def test_quiet_mode_suppresses_info(self, capsys, _fresh_log):
        log.configure("quiet", force=True)
        log.info("should not appear")
        log.warning("should appear")
        out = capsys.readouterr().out
        assert "should not appear" not in out
        assert "should appear" in out
