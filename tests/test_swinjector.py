"""Tests for NVBitPERfi: injector mechanics and EPR campaign shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import DeviceError
from repro.errormodels import ErrorDescriptor, ErrorModel
from repro.errormodels.models import SW_INJECTABLE
from repro.gpusim import Device, DeviceConfig
from repro.isa.opcodes import Op
from repro.swinjector import (
    NVBitPERfi,
    SwCampaignConfig,
    make_descriptor,
    run_epr_campaign,
)
from repro.swinjector.campaign import run_one_injection, _golden_bits
from repro.workloads import get_workload
from repro.workloads.base import default_launcher


def _run_with(app: str, desc: ErrorDescriptor, scale="tiny"):
    """Run one workload under a given descriptor; return (outcome, bits)."""
    w = get_workload(app, scale=scale)
    golden = w.run_golden()
    tool = NVBitPERfi(desc)
    dev = Device(DeviceConfig(global_mem_words=1 << 20))

    def launcher(program, grid, block, params=(), shared_words=None):
        return dev.launch(program, grid, block, params=params,
                          shared_words=shared_words, watchdog=2_000_000,
                          instrumentation=tool)

    try:
        bits = w.run(dev, launcher)
    except DeviceError as exc:
        return "due", None, tool
    return ("masked" if np.array_equal(bits, golden) else "sdc"), bits, tool


def _desc(model, **kw):
    base = dict(sm_id=0, subpartition=0, warp_slots=frozenset(),
                thread_mask=0xFFFFFFFF, bit_err_mask=1)
    base.update(kw)
    return ErrorDescriptor(model=model, **base)


class TestInjectorSemantics:
    def test_ivoc_always_due(self):
        outcome, _, _ = _run_with("vectoradd", _desc(ErrorModel.IVOC))
        assert outcome == "due"

    def test_ivra_out_of_bounds_register_is_due(self):
        d = _desc(ErrorModel.IVRA, bit_err_mask=1 << 7, err_oper_loc=0)
        outcome, _, _ = _run_with("vectoradd", d)
        assert outcome == "due"

    def test_ira_dst_mode_steals_result(self):
        d = _desc(ErrorModel.IRA, bit_err_mask=1, err_oper_loc=0)
        outcome, _, tool = _run_with("vectoradd", d)
        assert tool.activations > 0
        assert outcome in ("sdc", "due")

    def test_wv_flips_predicates(self):
        d = _desc(ErrorModel.WV)
        outcome, _, tool = _run_with("vectoradd", d)
        assert tool.activations > 0
        assert outcome in ("sdc", "due")

    def test_iat_subset_of_threads(self):
        d = _desc(ErrorModel.IAT, thread_mask=0x1, bit_err_mask=1 << 1)
        outcome, _, _ = _run_with("vectoradd", d)
        # thread 0 computes thread 2's element; element 0 never written
        assert outcome == "sdc"

    def test_iaw_whole_warp_substitution(self):
        d = _desc(ErrorModel.IAW, bit_err_mask=1 << 5)
        outcome, _, _ = _run_with("vectoradd", d)
        assert outcome in ("sdc", "due")

    def test_imd_masked_without_shared_memory(self):
        d = _desc(ErrorModel.IMD, bit_err_mask=1 << 3)
        outcome, _, tool = _run_with("vectoradd", d)
        assert outcome == "masked"
        assert tool.activations == 0  # vectoradd has no STS instructions

    def test_imd_active_on_shared_memory_app(self):
        d = _desc(ErrorModel.IMD, bit_err_mask=1 << 3, err_oper_loc=0)
        outcome, _, tool = _run_with("gemm", d)
        assert tool.activations > 0
        assert outcome in ("sdc", "due")

    def test_ims_corrupts_shared_loads(self):
        d = _desc(ErrorModel.IMS, bit_err_mask=1 << 2)
        outcome, _, tool = _run_with("gemm", d)
        assert tool.activations > 0
        assert outcome in ("sdc", "due")

    def test_ioc_replacement_changes_results(self):
        d = _desc(ErrorModel.IOC, replacement_op=Op.ISUB)
        outcome, _, _ = _run_with("vectoradd", d)
        assert outcome in ("sdc", "due")

    def test_ioc_same_op_is_masked(self):
        # replacing FADD by FADD on an FADD-only data path: no effect on
        # the arithmetic, only the integer addressing ops change
        d = _desc(ErrorModel.IOC, replacement_op=Op.IADD,
                  warp_slots=frozenset({11}))
        outcome, _, tool = _run_with("vectoradd", d)
        # warp slot 11 never runs in the tiny launch -> no activation
        assert tool.activations == 0
        assert outcome == "masked"

    def test_unmatching_coordinates_are_masked(self):
        d = _desc(ErrorModel.WV, sm_id=1, subpartition=3)
        outcome, _, tool = _run_with("vectoradd", d)
        assert outcome == "masked"
        # vectoradd tiny runs 1 CTA on SM0 only
        assert tool.activations == 0

    def test_ial_disable_discards_lane_results(self):
        d = _desc(ErrorModel.IAL, lane=0, lane_enable_mode="disable")
        outcome, _, _ = _run_with("vectoradd", d)
        assert outcome == "sdc"

    def test_ipp_delegates_to_other_models(self):
        # the paper: IPP "can be implemented by any of the other error
        # representations (IRA, IVRA, IAT, IAW, IMS, or IMD)"
        seen = set()
        for mask_bit in range(8):
            tool = NVBitPERfi(_desc(ErrorModel.IPP,
                                    bit_err_mask=1 << mask_bit))
            seen.add(tool.injector.delegate_name)
        assert len(seen) >= 3

    def test_ipp_injection_runs(self):
        outcome, _, _ = _run_with("gemm", _desc(ErrorModel.IPP,
                                                bit_err_mask=1 << 2))
        assert outcome in ("masked", "sdc", "due")


class TestDescriptors:
    def test_deterministic(self):
        a = make_descriptor(ErrorModel.IRA, seed=1, index=0)
        b = make_descriptor(ErrorModel.IRA, seed=1, index=0)
        assert a == b

    def test_indices_vary(self):
        ds = {make_descriptor(ErrorModel.IIO, seed=1, index=i).bit_err_mask
              for i in range(20)}
        assert len(ds) > 1

    def test_ivra_mask_escapes_register_window(self):
        for i in range(10):
            d = make_descriptor(ErrorModel.IVRA, seed=2, index=i)
            assert d.bit_err_mask >= 64

    def test_iat_leaves_a_thread_alive(self):
        for i in range(10):
            d = make_descriptor(ErrorModel.IAT, seed=3, index=i)
            assert d.thread_mask != 0xFFFFFFFF
            assert d.thread_mask != 0

    def test_iaw_uses_warp_level_bits(self):
        for i in range(10):
            d = make_descriptor(ErrorModel.IAW, seed=4, index=i)
            assert d.bit_err_mask >= 32


@pytest.fixture(scope="module")
def epr():
    cfg = SwCampaignConfig(
        apps=("vectoradd", "gemm", "bfs"),
        injections_per_model=10, scale="tiny",
    )
    return run_epr_campaign(cfg)


class TestEprCampaign:
    def test_counts_complete(self, epr):
        for app in epr.config.apps:
            for model in epr.config.models:
                assert sum(epr.counts(app, model).values()) == 10

    def test_rates_sum_to_100(self, epr):
        e = epr.epr("gemm", ErrorModel.WV)
        assert sum(e.values()) == pytest.approx(100.0)

    def test_operation_errors_mostly_due(self, epr):
        # paper: IRA/IVRA (and IOC/IIO) injections dominated by DUEs
        for model in (ErrorModel.IRA, ErrorModel.IVRA):
            avg = epr.average_epr(model)
            assert avg["due"] > avg["sdc"], model

    def test_ivra_due_heaviest(self, epr):
        assert epr.average_epr(ErrorModel.IVRA)["due"] >= 80.0

    def test_control_and_parallel_mostly_sdc(self, epr):
        for model in (ErrorModel.WV, ErrorModel.IAT):
            avg = epr.average_epr(model)
            assert avg["sdc"] > avg["due"], model

    def test_imd_masked_on_apps_without_shared(self, epr):
        assert epr.epr("vectoradd", ErrorModel.IMD)["masked"] == 100.0
        assert epr.epr("bfs", ErrorModel.IMD)["masked"] == 100.0
        assert epr.epr("gemm", ErrorModel.IMD)["masked"] < 100.0

    def test_overall_epr_high(self, epr):
        # paper: average EPR 84.2% (most permanent errors are not masked)
        assert epr.overall_epr() > 60.0

    def test_deterministic(self):
        cfg = SwCampaignConfig(apps=("vectoradd",), injections_per_model=5,
                               scale="tiny",
                               models=(ErrorModel.WV, ErrorModel.IRA))
        a = run_epr_campaign(cfg)
        b = run_epr_campaign(cfg)
        for m in cfg.models:
            assert a.counts("vectoradd", m) == b.counts("vectoradd", m)

    def test_multiprocessing_matches_serial(self):
        base = dict(apps=("vectoradd",), injections_per_model=6,
                    scale="tiny", models=(ErrorModel.IIO,))
        a = run_epr_campaign(SwCampaignConfig(**base, processes=1))
        b = run_epr_campaign(SwCampaignConfig(**base, processes=2))
        assert a.counts("vectoradd", ErrorModel.IIO) == \
            b.counts("vectoradd", ErrorModel.IIO)
