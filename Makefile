# Developer entry points for the reproduction repository.

PY ?= python

.PHONY: install test lint campaign-smoke chaos-smoke obs-smoke bench bench-baseline bench-compare bench-smoke report report-small claims docs examples clean

install:
	pip install -e .[test]

test:
	PYTHONPATH=src $(PY) -m pytest tests/ -q
	$(MAKE) campaign-smoke

# Style gate (ruff, when installed) + kernel static analyzer over every
# registered workload. The analyzer exits non-zero on any error-severity
# finding; ruff degrades to a notice in environments without it.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping Python style checks"; \
	fi
	PYTHONPATH=src $(PY) -m repro.staticanalysis

# End-to-end campaign-engine self-test: run a tiny resumable EPR campaign,
# simulate an interrupt, resume it, and verify the counts match an
# uninterrupted run (and that the golden-run cache hit rate exceeds 90%).
campaign-smoke:
	PYTHONPATH=src $(PY) -m repro.campaign smoke

# Resilience self-test: re-run the campaign smoke under injected worker
# kills/hangs, torn writes, bit flips and ENOSPC; verify + repair the
# damaged store, resume, and assert the aggregate equals a fault-free
# run (docs/RESILIENCE.md).
chaos-smoke:
	PYTHONPATH=src $(PY) -m repro.campaign chaos-smoke

# Observability self-test: trace a tiny EPR campaign, export the chrome
# trace, and verify the trace schema plus the metrics/campaign invariant
# (injections_total summed over labels == campaign item count).
obs-smoke:
	PYTHONPATH=src $(PY) -m repro.obs smoke

# Full benchmark suite; exports machine-readable results for
# bench-compare. BENCH_JSON is overridable (bench-baseline uses it to
# refresh the committed baseline).
BENCH_JSON ?= BENCH_run.json

bench:
	PYTHONPATH=src $(PY) -m pytest benchmarks/ --benchmark-only -q \
		--benchmark-json=$(BENCH_JSON)

# Refresh the committed baseline (run on a quiet machine, then commit).
# Raw per-round timing arrays are stripped: compare.py only reads the
# summary stats and the slimmed file stays diff-reviewable.
bench-baseline:
	$(MAKE) bench BENCH_JSON=benchmarks/BENCH_baseline.json
	$(PY) -c "import json; p='benchmarks/BENCH_baseline.json'; \
	d=json.load(open(p)); \
	[b['stats'].pop('data', None) for b in d['benchmarks']]; \
	json.dump(d, open(p, 'w'), indent=1, sort_keys=True)"

# Re-run the suite and fail if any benchmark regressed >20% vs the
# committed baseline (docs/PERFORMANCE.md).
bench-compare: bench
	$(PY) benchmarks/compare.py benchmarks/BENCH_baseline.json \
		$(BENCH_JSON) --threshold 0.20

# Fast CI subset: single-injection cost + campaign-engine throughput.
bench-smoke:
	PYTHONPATH=src $(PY) -m pytest benchmarks/test_bench_epr.py \
		--benchmark-only -q -k "single_injection or campaign_throughput" \
		--benchmark-json=BENCH_smoke.json

report:
	$(PY) -m repro.experiments --output experiments_report.txt

report-small:
	$(PY) -m repro.experiments --preset small --output experiments_report.txt

claims:
	$(PY) -c "from repro.analysis.compare import evaluate_claims; \
	s = evaluate_claims(); open('claims_report.md','w').write(s.render_markdown()); \
	print(f'{s.passed}/{s.total} claims hold')"

docs:
	$(PY) -c "from repro.isa.manual import write_manual; write_manual()"
	$(PY) -c "from repro.errormodels.manual import write_manual; write_manual()"

examples:
	for f in examples/*.py; do echo "== $$f"; $(PY) $$f > /dev/null || exit 1; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -f .benchmarks -r 2>/dev/null; true
